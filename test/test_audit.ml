(* The causal flight recorder and the offline protocol auditor: Lamport
   clock discipline, JSONL round-trips, clean audits of seeded runs on
   every stack, and — crucially — that the auditor actually catches
   histories that break the invariants. *)

open Support
module Event = Gc_obs.Event
module Audit = Gc_obs.Audit
module Stack = Gcs.Gcs_stack
module Tr = Gc_traditional.Traditional_stack
module Tt = Gc_totem.Totem_stack

type Gc_net.Payload.t += Probe of int

let () =
  Gc_net.Payload.register_printer (function
    | Probe k -> Some (Printf.sprintf "probe#%d" k)
    | _ -> None)

(* ---------- recorded worlds on each stack ---------- *)

let recorded_run ~make ~send ?(n = 3) ?(casts = 8) ?(seed = 7L)
    ?(until = 10_000.0) () =
  let engine = Engine.create ~seed () in
  let trace = Trace.create ~enabled:true () in
  let net = Netsim.create engine ~trace ~delay:Delay.lan ~n () in
  let initial = ids n in
  let stacks = Array.init n (fun id -> make net ~trace ~id ~initial) in
  for k = 0 to casts - 1 do
    ignore
      (Engine.schedule engine
         ~delay:(50.0 +. (float_of_int k *. 40.0))
         (fun () -> send stacks.(k mod n) (Probe k)))
  done;
  Engine.run ~until engine;
  trace

let new_run ?mix () =
  recorded_run
    ~make:(fun net ~trace ~id ~initial -> Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ())
    ~send:(fun s p ->
      match (mix, p) with
      | Some (), Probe k when k mod 2 = 0 -> Stack.rbcast s p
      | _ -> Stack.abcast s p)
    ()

let trad_run () =
  recorded_run
    ~make:(fun net ~trace ~id ~initial -> Tr.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ())
    ~send:(fun s p -> Tr.abcast s p)
    ()

let totem_run () =
  recorded_run
    ~make:(fun net ~trace ~id ~initial -> Tt.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ())
    ~send:(fun s p -> Tt.abcast s p)
    ()

(* ---------- Lamport clocks ---------- *)

let test_lamport_monotonic () =
  let trace = new_run () in
  let per_node = Hashtbl.create 8 in
  List.iter
    (fun (r : Trace.record) ->
      (match Hashtbl.find_opt per_node r.Trace.node with
      | Some prev ->
          if r.Trace.lamport <= prev then
            Alcotest.failf "node %d: lamport %d after %d" r.Trace.node
              r.Trace.lamport prev
      | None -> ());
      Hashtbl.replace per_node r.Trace.node r.Trace.lamport)
    (Trace.records trace);
  check_bool "some nodes emitted" true (Hashtbl.length per_node >= 3)

let test_lamport_merge () =
  let t = Trace.create ~enabled:true () in
  for _ = 1 to 3 do
    Trace.emit_event t ~time:0.0 ~node:0 ~component:"x" ~kind:Event.Send ()
  done;
  check_int "sender clock" 3 (Trace.clock t ~node:0);
  Trace.merge_clock t ~node:1 ~clock:(Trace.clock t ~node:0);
  Trace.emit_event t ~time:1.0 ~node:1 ~component:"x" ~kind:Event.Recv ();
  check_int "receiver jumped past sender" 5 (Trace.clock t ~node:1);
  (* A stale remote clock must not rewind the receiver. *)
  Trace.merge_clock t ~node:1 ~clock:2;
  Trace.emit_event t ~time:2.0 ~node:1 ~component:"x" ~kind:Event.Recv ();
  check_int "stale merge ignored" 6 (Trace.clock t ~node:1)

let test_send_happens_before_deliver () =
  let trace = new_run () in
  let sends = Hashtbl.create 32 in
  List.iter
    (fun (r : Trace.record) ->
      if r.Trace.component = "abcast" && r.Trace.kind = Event.Send then
        match r.Trace.msg with
        | Some m -> Hashtbl.replace sends m r.Trace.lamport
        | None -> ())
    (Trace.records trace);
  let checked = ref 0 in
  List.iter
    (fun (r : Trace.record) ->
      if r.Trace.component = "abcast" && r.Trace.kind = Event.Deliver then
        match Option.bind r.Trace.msg (Hashtbl.find_opt sends) with
        | Some send_clock ->
            incr checked;
            if r.Trace.lamport <= send_clock then
              Alcotest.failf "deliver of %s at L%d not after send at L%d"
                (Option.get r.Trace.msg) r.Trace.lamport send_clock
        | None -> ())
    (Trace.records trace);
  check_bool "deliveries checked" true (!checked > 10)

(* ---------- JSONL round-trip ---------- *)

let test_jsonl_roundtrip () =
  let events =
    [
      {
        Event.time = 12.5;
        node = 0;
        lamport = 1;
        component = "abcast";
        kind = Event.Send;
        msg = Some "ab:0.1";
        attrs = [ ("origin", "0"); ("mseq", "1") ];
      };
      {
        Event.time = 14.25;
        node = 2;
        lamport = 7;
        component = "gbcast";
        kind = Event.Custom "freeze";
        msg = None;
        attrs = [];
      };
      {
        Event.time = 20.0;
        node = -1;
        lamport = 3;
        component = "membership";
        kind = Event.ViewInstall;
        msg = Some "view:2";
        attrs = [ ("view", "v2[0;1;2]") ];
      };
    ]
  in
  let path = Filename.temp_file "gcs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Event.save_jsonl path events;
      let back = Event.load_jsonl path in
      check_bool "round-trip preserves events" true (events = back))

let test_trace_save_jsonl () =
  let trace = new_run () in
  let path = Filename.temp_file "gcs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save_jsonl trace path;
      let back = Event.load_jsonl path in
      check_int "every record serialised"
        (List.length (Trace.records trace))
        (List.length back);
      check_bool "records survive" true (Trace.records trace = back))

(* ---------- clean audits of seeded runs ---------- *)

let assert_clean name trace =
  let report = Audit.run (Trace.records trace) in
  if not (Audit.ok report) then
    Alcotest.failf "%s audit: %s" name
      (Format.asprintf "%a" Audit.pp_report report)

let test_audit_new_clean () = assert_clean "new stack" (new_run ())
let test_audit_gbcast_clean () = assert_clean "gbcast mix" (new_run ~mix:() ())
let test_audit_trad_clean () = assert_clean "traditional" (trad_run ())
let test_audit_totem_clean () = assert_clean "totem" (totem_run ())

(* ---------- the auditor must catch bad histories ---------- *)

let violation_checks report =
  List.map (fun (v : Audit.violation) -> v.Audit.check) report.Audit.violations

(* Swap two abcast deliveries at one node in an otherwise clean recorded
   run: the total-order check must flag the reordering. *)
let test_detects_injected_reorder () =
  let records = Trace.records (new_run ()) in
  let deliver_at_node1 (r : Trace.record) =
    r.Trace.node = 1 && r.Trace.component = "abcast"
    && r.Trace.kind = Event.Deliver
  in
  let i1, i2 =
    let found = ref [] in
    List.iteri
      (fun i r ->
        if deliver_at_node1 r && List.length !found < 2 then
          match !found with
          | [ (_, prev) ] when prev.Trace.msg <> r.Trace.msg ->
              found := !found @ [ (i, r) ]
          | [] -> found := [ (i, r) ]
          | _ -> ())
      records;
    match !found with
    | [ (i1, _); (i2, _) ] -> (i1, i2)
    | _ -> Alcotest.fail "expected at least two abcast deliveries at node 1"
  in
  let e1 = List.nth records i1 and e2 = List.nth records i2 in
  let reordered =
    List.mapi
      (fun i r -> if i = i1 then e2 else if i = i2 then e1 else r)
      records
  in
  let clean = Audit.run ~checks:[ Audit.Total_order ] records in
  check_bool "clean history passes" true (Audit.ok clean);
  let report = Audit.run reordered in
  check_bool "reordered history detected" true
    (List.mem Audit.Total_order (violation_checks report))

(* Synthetic histories for the remaining checks. *)

let ev ?(time = 0.0) ?(lamport = 0) ?msg ?(attrs = []) node component kind =
  { Event.time; node; lamport; component; kind; msg; attrs }

let test_detects_fifo_gap () =
  let d seq =
    ev 1 "rchannel" Event.Deliver
      ~msg:(Printf.sprintf "rc:0.0.%d" seq)
      ~attrs:[ ("src", "0"); ("gen", "0"); ("seq", string_of_int seq) ]
  in
  let report = Audit.run [ d 1; d 3; d 2 ] in
  check_bool "fifo regression detected" true
    (violation_checks report = [ Audit.Fifo ])

let test_detects_conflict_reorder () =
  let d node m cls =
    ev node "gbcast" Event.Deliver ~msg:m ~attrs:[ ("cls", cls) ]
  in
  (* Conflicting messages in opposite orders at two nodes. *)
  let bad =
    [
      d 0 "gb:0.1" "conflicting";
      d 0 "gb:1.1" "conflicting";
      d 1 "gb:1.1" "conflicting";
      d 1 "gb:0.1" "conflicting";
    ]
  in
  check_bool "conflicting reorder detected" true
    (violation_checks (Audit.run bad) = [ Audit.Conflict_order ]);
  (* Commuting messages may reorder against each other... *)
  let commuting_ok =
    [
      d 0 "gb:0.1" "commuting";
      d 0 "gb:1.1" "commuting";
      d 1 "gb:1.1" "commuting";
      d 1 "gb:0.1" "commuting";
    ]
  in
  check_bool "commuting reorder allowed" true (Audit.ok (Audit.run commuting_ok));
  (* ... but not across a conflicting message. *)
  let across =
    [
      d 0 "gb:0.1" "conflicting";
      d 0 "gb:1.1" "commuting";
      d 1 "gb:1.1" "commuting";
      d 1 "gb:0.1" "conflicting";
    ]
  in
  check_bool "commuting across conflicting detected" true
    (violation_checks (Audit.run across) = [ Audit.Conflict_order ])

let test_detects_view_mismatch () =
  let install node vid =
    ev node "membership" Event.ViewInstall
      ~msg:(Printf.sprintf "view:%d" vid)
      ~attrs:
        [ ("vid", string_of_int vid); ("view", Printf.sprintf "v%d[0;1]" vid) ]
  in
  let d node = ev node "gbcast" Event.Deliver ~msg:"gb:0.1" in
  let bad = [ install 0 1; install 1 1; install 1 2; d 0; d 1 ] in
  check_bool "view mismatch detected" true
    (violation_checks (Audit.run bad) = [ Audit.Same_view ]);
  let good = [ install 0 1; install 1 1; d 0; d 1 ] in
  check_bool "same view passes" true (Audit.ok (Audit.run good))

let test_detects_split_decision () =
  let decide node value =
    ev node "consensus" Event.Decide ~msg:"cs:4"
      ~attrs:[ ("inst", "4"); ("val", value) ]
  in
  let bad = [ decide 0 "a"; decide 1 "b" ] in
  check_bool "split decision detected" true
    (violation_checks (Audit.run bad) = [ Audit.Agreement ]);
  check_bool "agreeing decisions pass" true
    (Audit.ok (Audit.run [ decide 0 "a"; decide 1 "a" ]))

let test_detects_replay_after_restart () =
  let d ?(component = "abcast") time node m =
    ev ~time node component Event.Deliver ~msg:m
  in
  let restart time node =
    ev ~time (-1) "fault" (Event.Custom "restart")
      ~attrs:[ ("node", string_of_int node) ]
  in
  let bad = [ d 10.0 2 "ab:0.1"; restart 20.0 2; d 30.0 2 "ab:0.1" ] in
  check_bool "replay after restart detected" true
    (List.mem Audit.Replay_idempotence (violation_checks (Audit.run bad)));
  (* A duplicate at a node that never restarted is Total_order's business,
     not this check's. *)
  let other = [ d 10.0 1 "ab:0.1"; restart 20.0 2; d 30.0 1 "ab:0.1" ] in
  check_bool "other node's duplicate not this check" true
    (not
       (List.mem Audit.Replay_idempotence (violation_checks (Audit.run other))));
  (* Without restart events the check passes vacuously. *)
  let no_restart = [ d 10.0 2 "ab:0.1"; d 30.0 2 "ab:0.1" ] in
  check_bool "vacuous without restarts" true
    (not
       (List.mem Audit.Replay_idempotence
          (violation_checks (Audit.run no_restart))));
  (* Dissemination layers below the app surface keep volatile dedup state:
     a rebooted node may see retransmitted rb traffic again. *)
  let rb =
    [
      d ~component:"rbcast" 10.0 2 "rb:0.1";
      restart 20.0 2;
      d ~component:"rbcast" 30.0 2 "rb:0.1";
    ]
  in
  check_bool "rbcast redelivery tolerated" true (Audit.ok (Audit.run rb));
  (* The documented-limitation waiver downgrades it for the baselines. *)
  let waived =
    Audit.run
      ~checks:[ Audit.Replay_idempotence ]
      ~waivers:[ Audit.restarted_rejoin ~check:Audit.Replay_idempotence ]
      bad
  in
  check_bool "waiver downgrades to documented behaviour" true
    (Audit.ok waived)

let suite =
  [
    ( "audit",
      [
        Alcotest.test_case "lamport monotonic per node" `Quick
          test_lamport_monotonic;
        Alcotest.test_case "lamport merge on receive" `Quick test_lamport_merge;
        Alcotest.test_case "send happens-before deliver" `Quick
          test_send_happens_before_deliver;
        Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "trace save_jsonl" `Quick test_trace_save_jsonl;
        Alcotest.test_case "clean audit: new stack" `Quick test_audit_new_clean;
        Alcotest.test_case "clean audit: gbcast mix" `Quick
          test_audit_gbcast_clean;
        Alcotest.test_case "clean audit: traditional" `Quick
          test_audit_trad_clean;
        Alcotest.test_case "clean audit: totem" `Quick test_audit_totem_clean;
        Alcotest.test_case "detects injected reorder" `Quick
          test_detects_injected_reorder;
        Alcotest.test_case "detects fifo gap" `Quick test_detects_fifo_gap;
        Alcotest.test_case "detects conflict reorder" `Quick
          test_detects_conflict_reorder;
        Alcotest.test_case "detects view mismatch" `Quick
          test_detects_view_mismatch;
        Alcotest.test_case "detects replay after restart" `Quick
          test_detects_replay_after_restart;
        Alcotest.test_case "detects split decision" `Quick
          test_detects_split_decision;
      ] );
  ]
