lib/kernel/process.mli: Gc_net Gc_sim
