lib/kernel/process.ml: Gc_net Gc_sim List
