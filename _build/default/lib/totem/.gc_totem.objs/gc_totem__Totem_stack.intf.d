lib/totem/totem_stack.mli: Gc_membership Gc_net Gc_sim
