lib/totem/totem_stack.ml: Format Gc_fd Gc_kernel Gc_membership Gc_net Gc_rchannel Hashtbl List Option Printf
