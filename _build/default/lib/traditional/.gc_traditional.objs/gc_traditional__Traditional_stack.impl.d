lib/traditional/traditional_stack.ml: Format Gc_consensus Gc_fd Gc_kernel Gc_membership Gc_net Gc_rbcast Gc_rchannel Hashtbl List Option Printf String
