lib/traditional/traditional_stack.mli: Gc_kernel Gc_membership Gc_net Gc_rchannel Gc_sim
