lib/core/gcs_stack.mli: Gc_abcast Gc_fd Gc_gbcast Gc_kernel Gc_membership Gc_monitoring Gc_net Gc_rbcast Gc_rchannel Gc_sim
