(** Extensible message payloads.

    Each protocol layer extends {!t} with its own constructors (heartbeats,
    consensus phases, broadcast data, ...).  Keeping one extensible type lets
    the simulated network, the tracer and the statistics treat all protocol
    traffic uniformly while every layer still pattern-matches only on its own
    messages. *)

type t = ..

val register_printer : (t -> string option) -> unit
(** Layers register a printer for their constructors; used by traces and
    debugging output. *)

val to_string : t -> string
(** Best-effort rendering through the registered printers. *)
