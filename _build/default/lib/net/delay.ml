type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { min : float; mean_extra : float }
  | Lognormal of { min : float; mu : float; sigma : float }

let floor_positive x = if x <= 0.0 then 0.001 else x

let sample t rng =
  let v =
    match t with
    | Constant d -> d
    | Uniform { lo; hi } -> Gc_sim.Rng.uniform rng ~lo ~hi
    | Exponential { min; mean_extra } ->
        min +. Gc_sim.Rng.exponential rng ~mean:mean_extra
    | Lognormal { min; mu; sigma } ->
        min +. Gc_sim.Rng.lognormal rng ~mu ~sigma
  in
  floor_positive v

let mean = function
  | Constant d -> d
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { min; mean_extra } -> min +. mean_extra
  | Lognormal { min; mu; sigma } -> min +. exp (mu +. (sigma *. sigma /. 2.0))

let lan = Exponential { min = 1.0; mean_extra = 0.5 }
let wan = Exponential { min = 20.0; mean_extra = 10.0 }

let pp ppf = function
  | Constant d -> Format.fprintf ppf "constant(%gms)" d
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%g..%gms)" lo hi
  | Exponential { min; mean_extra } ->
      Format.fprintf ppf "exp(min=%gms, tail=%gms)" min mean_extra
  | Lognormal { min; mu; sigma } ->
      Format.fprintf ppf "lognormal(min=%gms, mu=%g, sigma=%g)" min mu sigma
