lib/net/payload.ml:
