lib/net/netsim.ml: Array Delay Gc_sim List Payload Printf
