lib/net/payload.mli:
