lib/net/netsim.mli: Delay Gc_sim Payload
