lib/net/delay.mli: Format Gc_sim
