lib/net/delay.ml: Format Gc_sim
