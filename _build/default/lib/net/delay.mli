(** Link-delay distributions for the simulated network.

    All times are virtual milliseconds.  Every distribution has a strictly
    positive floor so that a message never arrives at (or before) the instant
    it was sent. *)

type t =
  | Constant of float
      (** Fixed one-way delay. *)
  | Uniform of { lo : float; hi : float }
      (** Uniform in [\[lo, hi\]]. *)
  | Exponential of { min : float; mean_extra : float }
      (** [min] plus an exponential tail with mean [mean_extra] — the classic
          LAN model: small base latency, occasional stragglers. *)
  | Lognormal of { min : float; mu : float; sigma : float }
      (** [min] plus a log-normal tail; heavier than exponential. *)

val sample : t -> Gc_sim.Rng.t -> float
(** Draw a delay; always [> 0]. *)

val mean : t -> float
(** Analytic mean of the distribution (used to pick sensible timeouts in the
    benches). *)

val lan : t
(** Default LAN-like model: 1 ms base + exponential tail of mean 0.5 ms. *)

val wan : t
(** Default WAN-like model: 20 ms base + exponential tail of mean 10 ms. *)

val pp : Format.formatter -> t -> unit
