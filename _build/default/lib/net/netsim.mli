(** Simulated unreliable transport ("Unreliable Transport" in Figure 9 of the
    paper).

    Provides unreliable, unordered, point-to-point datagram delivery between
    numbered nodes over the discrete-event {!Gc_sim.Engine}:

    - each message is delayed by a draw from the link's delay distribution,
      so messages can be reordered;
    - each message is dropped with the link's drop probability;
    - crashed nodes neither send nor receive (crash-stop model, as in the
      paper's primary-partition setting);
    - the node set can be partitioned; messages across partition boundaries
      are dropped at send time;
    - transient delay spikes can be injected per node, to provoke wrong
      failure suspicions (Section 4.3 of the paper).

    Nothing here retransmits or orders — those are the jobs of the reliable
    channel layer built on top. *)

type t

val create :
  Gc_sim.Engine.t ->
  ?trace:Gc_sim.Trace.t ->
  ?delay:Delay.t ->
  ?drop:float ->
  n:int ->
  unit ->
  t
(** [create engine ~n ()] builds a network of nodes [0 .. n-1].  [delay]
    (default {!Delay.lan}) and [drop] (default [0.]) apply to every link
    unless overridden with {!set_link}. *)

val engine : t -> Gc_sim.Engine.t
val size : t -> int

val register : t -> node:int -> (src:int -> Payload.t -> unit) -> unit
(** Install the receive handler for [node].  At most one handler per node;
    registering again replaces it (used when a process restarts as a fresh
    incarnation). *)

val send : t -> ?size:int -> src:int -> dst:int -> Payload.t -> unit
(** Fire-and-forget datagram.  [size] (bytes, default 64) only feeds the
    traffic accounting.  Sends from crashed nodes, to crashed nodes, or
    across a partition boundary are silently dropped. *)

val crash : t -> int -> unit
(** Crash-stop [node]: all future sends and deliveries involving it are
    suppressed (in-flight messages to it are dropped on arrival). *)

val alive : t -> int -> bool

val set_link : t -> src:int -> dst:int -> ?delay:Delay.t -> ?drop:float -> unit -> unit
(** Override delay and/or drop probability of the directed link
    [src -> dst]. *)

val partition : t -> int list list -> unit
(** Split the nodes into the given groups; nodes absent from every group form
    an implicit extra group.  Replaces any previous partition. *)

val heal : t -> unit
(** Remove the partition. *)

val delay_spike : t -> nodes:int list -> until:float -> extra:float -> unit
(** Add [extra] ms to every message {e sent by} the given nodes until virtual
    time [until].  Models transient overload / GC pauses that cause wrong
    suspicions. *)

(** {1 Accounting} *)

val messages_sent : t -> int
val messages_delivered : t -> int
val messages_dropped : t -> int
val bytes_sent : t -> int

val reset_counters : t -> unit
