type t = ..

let printers : (t -> string option) list ref = ref []
let register_printer f = printers := f :: !printers

let to_string p =
  let rec go = function
    | [] -> "<payload>"
    | f :: rest -> ( match f p with Some s -> s | None -> go rest)
  in
  go !printers
