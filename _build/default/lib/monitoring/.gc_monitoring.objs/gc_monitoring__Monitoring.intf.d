lib/monitoring/monitoring.mli: Gc_fd Gc_kernel Gc_membership Gc_rchannel
