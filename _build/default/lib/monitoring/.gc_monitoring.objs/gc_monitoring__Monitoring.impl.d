lib/monitoring/monitoring.ml: Gc_fd Gc_kernel Gc_membership Gc_net Gc_rchannel Hashtbl List Printf
