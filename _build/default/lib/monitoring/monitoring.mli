(** The monitoring component ("Monitoring" in Figure 9): the place where
    exclusion decisions are made.

    The decoupling argued for in Section 3.3.2: failure {e suspicion} (the
    failure detector, consulted by consensus with aggressive timeouts) and
    membership {e exclusion} (this component, deliberately conservative) are
    different concerns.  A wrong suspicion costs the consensus a round; a
    wrong exclusion costs an exclusion plus a rejoin plus a state transfer —
    so exclusion should be slow and careful, while suspicion can be fast.

    Policies:

    - [Immediate]: exclude on this process's first (long-timeout) suspicion —
      essentially what traditional stacks do, kept as an ablation baseline;
    - [Threshold k]: processes gossip their suspicions (and retractions);
      exclude [q] only once at least [k] current members suspect [q];
    - [Output_triggered]: exclude [q] when the reliable channel reports that
      output to [q] has been stuck longer than its (long) threshold — the
      paper's output-triggered suspicion [12];
    - [Threshold_or_output k]: either of the above. *)

type policy =
  | Immediate
  | Threshold of int
  | Output_triggered
  | Threshold_or_output of int

type t

val create :
  Gc_kernel.Process.t ->
  fd:Gc_fd.Failure_detector.t ->
  rc:Gc_rchannel.Reliable_channel.t ->
  membership:Gc_membership.Group_membership.t ->
  ?exclusion_timeout:float ->
  policy:policy ->
  unit ->
  t
(** [exclusion_timeout] (default 5000 ms) is the conservative timeout of the
    monitor this component opens on the shared failure detector — an order of
    magnitude above the consensus timeout, per the paper. *)

val stop : t -> unit

(** {1 Accounting (benches / tests)} *)

val exclusions_proposed : t -> int

val wrongful_exclusions_proposed : t -> int
(** Exclusions proposed while the target was in fact alive (simulator ground
    truth). *)
