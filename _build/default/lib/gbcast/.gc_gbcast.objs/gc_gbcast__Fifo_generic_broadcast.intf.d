lib/gbcast/fifo_generic_broadcast.mli: Conflict Gc_net Generic_broadcast
