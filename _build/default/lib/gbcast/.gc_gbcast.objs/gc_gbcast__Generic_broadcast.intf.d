lib/gbcast/generic_broadcast.mli: Conflict Gc_abcast Gc_kernel Gc_net Gc_rbcast Gc_rchannel
