lib/gbcast/generic_broadcast.ml: Conflict Gc_abcast Gc_kernel Gc_net Gc_rbcast Gc_rchannel Hashtbl List Option Printf
