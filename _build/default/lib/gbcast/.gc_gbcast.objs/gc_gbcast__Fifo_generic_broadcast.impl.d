lib/gbcast/fifo_generic_broadcast.ml: Gc_net Generic_broadcast Hashtbl List Option Printf
