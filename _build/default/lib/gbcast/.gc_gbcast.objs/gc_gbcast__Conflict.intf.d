lib/gbcast/conflict.mli: Gc_net
