lib/gbcast/conflict.ml: Gc_net
