type relation = Gc_net.Payload.t -> Gc_net.Payload.t -> bool

let none _ _ = false
let all _ _ = true

type klass = Commuting | Ordered

let by_class ~classify m m' =
  match (classify m, classify m') with
  | Commuting, Commuting -> false
  | Commuting, Ordered | Ordered, Commuting | Ordered, Ordered -> true
