(** Conflict relations for generic broadcast.

    A conflict relation says which pairs of messages must be delivered in the
    same order everywhere.  Generic broadcast pays ordering cost only for
    conflicting pairs (Section 3.2.1 of the paper). *)

type relation = Gc_net.Payload.t -> Gc_net.Payload.t -> bool
(** [conflict m m'] — must be symmetric.  Reflexivity is not required: the
    relation is only ever consulted on distinct messages. *)

val none : relation
(** Nothing conflicts: generic broadcast degenerates to reliable broadcast. *)

val all : relation
(** Everything conflicts: generic broadcast degenerates to atomic
    broadcast. *)

type klass = Commuting | Ordered
(** The paper's two-class instantiation (Section 3.3): [Commuting] messages
    ([rbcast] invocations, e.g. passive-replication updates) conflict only
    with [Ordered] ones; [Ordered] messages ([abcast] invocations, e.g.
    primary-change) conflict with everything. *)

val by_class : classify:(Gc_net.Payload.t -> klass) -> relation
(** The conflict relation induced by the rbcast/abcast class table of
    Section 3.3:

    {v
               rbcast       abcast
    rbcast   no conflict   conflict
    abcast    conflict     conflict
    v} *)
