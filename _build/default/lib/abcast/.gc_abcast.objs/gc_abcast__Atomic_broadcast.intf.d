lib/abcast/atomic_broadcast.mli: Gc_fd Gc_kernel Gc_net Gc_rbcast Gc_rchannel
