lib/abcast/atomic_broadcast.ml: Gc_consensus Gc_kernel Gc_net Gc_rbcast Gc_rchannel Hashtbl List Printf
