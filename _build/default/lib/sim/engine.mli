(** Discrete-event simulation engine.

    The engine owns a virtual clock and an ordered queue of pending events.
    Components schedule closures to run at future virtual times; [run]
    repeatedly pops the earliest event, advances the clock to its timestamp
    and executes it.  Two events at the same timestamp execute in scheduling
    order, which — together with the seeded {!Rng} — makes whole simulations
    deterministic.

    Times are in virtual {e milliseconds} (floats).  Nothing in the engine
    depends on wall-clock time. *)

type t

type timer
(** Handle for a scheduled event; allows cancellation. *)

val create : ?seed:int64 -> unit -> t
(** Fresh engine with the clock at [0.0].  [seed] (default [1L]) seeds the
    root random stream. *)

val now : t -> float
(** Current virtual time in milliseconds. *)

val rng : t -> Rng.t
(** The engine's root random stream.  Components should normally call
    {!split_rng} once instead of drawing from the root directly. *)

val split_rng : t -> Rng.t
(** An independent random stream derived from the root; see {!Rng.split}. *)

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** [schedule t ~delay f] runs [f] at [now t +. max delay 0.]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> timer
(** [schedule_at t ~time f] runs [f] at virtual time [time] ([now t] if the
    requested time is already past). *)

val cancel : timer -> unit
(** Cancel a pending event.  Cancelling an already-fired or already-cancelled
    timer is a no-op. *)

val pending : t -> int
(** Number of scheduled, not-yet-cancelled events. *)

val step : t -> bool
(** Execute the earliest pending event.  Returns [false] when the queue is
    empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue.  Stops when the queue is empty, when the next
    event lies beyond [until] (the clock is then advanced to [until]), or
    after [max_events] events (a runaway-simulation backstop,
    default 50 million). *)

val events_executed : t -> int
(** Total number of events executed so far (for micro-benchmarks and runaway
    detection in tests). *)
