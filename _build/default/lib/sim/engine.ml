type timer = {
  time : float;
  seq : int;
  mutable cancelled : bool;
  callback : unit -> unit;
}

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  queue : timer Heap.t;
  root_rng : Rng.t;
}

let compare_timer a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 1L) () =
  {
    clock = 0.0;
    next_seq = 0;
    executed = 0;
    queue = Heap.create ~cmp:compare_timer ();
    root_rng = Rng.create seed;
  }

let now t = t.clock
let rng t = t.root_rng
let split_rng t = Rng.split t.root_rng

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  let timer = { time; seq = t.next_seq; cancelled = false; callback = f } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.queue timer;
  timer

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) f

let cancel timer = timer.cancelled <- true

let pending t =
  List.fold_left
    (fun acc e -> if e.cancelled then acc else acc + 1)
    0 (Heap.to_list t.queue)

let step t =
  let rec loop () =
    match Heap.pop t.queue with
    | None -> false
    | Some e when e.cancelled -> loop ()
    | Some e ->
        t.clock <- e.time;
        t.executed <- t.executed + 1;
        e.callback ();
        true
  in
  loop ()

let run ?until ?(max_events = 50_000_000) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some e when e.cancelled ->
        ignore (Heap.pop t.queue)
    | Some e -> (
        match until with
        | Some limit when e.time > limit ->
            t.clock <- limit;
            continue := false
        | _ ->
            ignore (step t);
            decr budget)
  done;
  if !budget = 0 then
    failwith "Engine.run: max_events exhausted (runaway simulation?)";
  match until with
  | Some limit when t.clock < limit && Heap.is_empty t.queue -> t.clock <- limit
  | _ -> ()

let events_executed t = t.executed
