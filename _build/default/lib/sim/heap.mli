(** Minimal array-based binary min-heap, specialised by a user-supplied
    comparison.

    Used by the event queue; kept polymorphic so tests can exercise it on
    plain integers. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** Empty heap ordered by [cmp] (smallest element at the top). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap layout); for inspection only. *)
