type sample = { mutable data : float array; mutable size : int }

let sample () = { data = [||]; size = 0 }

let add s x =
  let cap = Array.length s.data in
  if s.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ndata = Array.make ncap 0.0 in
    Array.blit s.data 0 ndata 0 s.size;
    s.data <- ndata
  end;
  s.data.(s.size) <- x;
  s.size <- s.size + 1

let count s = s.size

let fold f init s =
  let acc = ref init in
  for i = 0 to s.size - 1 do
    acc := f !acc s.data.(i)
  done;
  !acc

let mean s =
  if s.size = 0 then nan else fold ( +. ) 0.0 s /. float_of_int s.size

let stddev s =
  if s.size = 0 then nan
  else begin
    let m = mean s in
    let var =
      fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 s
      /. float_of_int s.size
    in
    sqrt var
  end

let min_value s = if s.size = 0 then nan else fold Float.min infinity s
let max_value s = if s.size = 0 then nan else fold Float.max neg_infinity s

let percentile s p =
  if s.size = 0 then nan
  else begin
    let sorted = Array.sub s.data 0 s.size in
    Array.sort Float.compare sorted;
    let rank = p /. 100.0 *. float_of_int (s.size - 1) in
    let lo = int_of_float (Float.floor rank)
    and hi = int_of_float (Float.ceil rank) in
    let frac = rank -. Float.floor rank in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median s = percentile s 50.0

type counter = { mutable n : int }

let counter () = { n = 0 }
let incr c = c.n <- c.n + 1
let incr_by c k = c.n <- c.n + k
let value c = c.n

let fmt_ms x =
  if Float.is_nan x then "-"
  else if Float.abs x >= 1000.0 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 10.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.2f" x

let print_table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  let note_row r =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) r
  in
  List.iter note_row all;
  let print_row r =
    let cells =
      List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) r
    in
    print_endline ("  " ^ String.concat "  " cells)
  in
  print_row header;
  let rule = List.init (List.length header) (fun i -> String.make widths.(i) '-') in
  print_row rule;
  List.iter print_row rows
