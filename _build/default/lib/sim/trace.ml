type record = {
  time : float;
  node : int;
  component : string;
  event : string;
  detail : string;
}

type t = {
  mutable on : bool;
  capacity : int;
  buf : record Queue.t;
}

let create ?(enabled = false) ?(capacity = 100_000) () =
  { on = enabled; capacity; buf = Queue.create () }

let enable t b = t.on <- b
let enabled t = t.on

let emit t ~time ~node ~component ~event detail =
  if t.on then begin
    if Queue.length t.buf >= t.capacity then ignore (Queue.pop t.buf);
    Queue.push { time; node; component; event; detail } t.buf
  end

let records t = List.of_seq (Queue.to_seq t.buf)

let find t ?node ?component ?event () =
  let keep r =
    (match node with None -> true | Some n -> r.node = n)
    && (match component with None -> true | Some c -> r.component = c)
    && match event with None -> true | Some e -> r.event = e
  in
  List.filter keep (records t)

let clear t = Queue.clear t.buf

let pp_record ppf r =
  Format.fprintf ppf "[%8.2f] n%d %s/%s %s" r.time r.node r.component r.event
    r.detail
