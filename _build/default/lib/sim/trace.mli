(** Structured trace of simulation events.

    Components emit trace records (who, when, what); tests assert on them
    and the examples print them.  Tracing is off by default and costs one
    branch per emit when disabled. *)

type record = {
  time : float;      (** virtual time of the event *)
  node : int;        (** emitting process, [-1] for the environment *)
  component : string;(** e.g. "consensus", "fd" *)
  event : string;    (** short event tag, e.g. "decide" *)
  detail : string;   (** free-form detail *)
}

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** A trace buffer keeping at most [capacity] (default 100_000) most recent
    records. *)

val enable : t -> bool -> unit
val enabled : t -> bool

val emit :
  t -> time:float -> node:int -> component:string -> event:string ->
  string -> unit

val records : t -> record list
(** Records in emission order. *)

val find : t -> ?node:int -> ?component:string -> ?event:string -> unit ->
  record list
(** Records matching all the given filters. *)

val clear : t -> unit

val pp_record : Format.formatter -> record -> unit
