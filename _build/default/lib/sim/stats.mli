(** Measurement helpers for experiments: samples, counters and formatted
    summary rows.

    All experiment tables in the benchmark harness are produced from these
    aggregates, so the formatting lives here rather than being re-invented in
    every bench. *)

(** {1 Sample sets} *)

type sample
(** A growable set of float observations (e.g. latencies in ms). *)

val sample : unit -> sample
val add : sample -> float -> unit
val count : sample -> int
val mean : sample -> float
(** Mean of the observations; [nan] when empty. *)

val stddev : sample -> float
(** Population standard deviation; [nan] when empty. *)

val min_value : sample -> float
val max_value : sample -> float

val percentile : sample -> float -> float
(** [percentile s p] for [p] in [\[0,100\]], by nearest-rank on the sorted
    observations; [nan] when empty. *)

val median : sample -> float

(** {1 Counters} *)

type counter
val counter : unit -> counter
val incr : counter -> unit
val incr_by : counter -> int -> unit
val value : counter -> int

(** {1 Table formatting} *)

val fmt_ms : float -> string
(** Render a duration in ms with adaptive precision ("-" for [nan]). *)

val print_table : header:string list -> string list list -> unit
(** Print an aligned plain-text table on stdout. *)
