lib/sim/rng.mli:
