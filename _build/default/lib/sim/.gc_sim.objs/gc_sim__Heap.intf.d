lib/sim/heap.mli:
