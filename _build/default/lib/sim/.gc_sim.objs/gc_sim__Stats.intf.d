lib/sim/stats.mli:
