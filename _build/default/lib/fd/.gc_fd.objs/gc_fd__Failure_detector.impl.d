lib/fd/failure_detector.ml: Float Gc_kernel Gc_net Hashtbl List Printf
