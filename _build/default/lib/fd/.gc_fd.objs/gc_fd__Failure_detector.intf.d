lib/fd/failure_detector.mli: Gc_kernel
