(** Deterministic state machines for replication, plus the example machines
    used throughout the paper's discussion.

    A machine is a record of closures over hidden mutable state: [apply]
    executes one command and returns its reply, [snapshot]/[restore]
    serialise the full state for joiner/rejoiner transfers.  Commands and
    replies are network payloads, so they travel unmodified through the
    broadcast layers. *)

type t = {
  apply : Gc_net.Payload.t -> Gc_net.Payload.t;
  snapshot : unit -> Gc_net.Payload.t;
  restore : Gc_net.Payload.t -> unit;
}

(** {1 Bank accounts (Section 4.2 of the paper)}

    Deposits commute with each other; withdrawals (which must not overdraw)
    conflict with everything — the paper's showcase for generic broadcast. *)
module Bank : sig
  type Gc_net.Payload.t +=
    | Deposit of { account : int; amount : int }
    | Withdraw of { account : int; amount : int }
    | Balance of { account : int }
    | Bank_ok of { balance : int }
    | Bank_insufficient
    | Bank_state of (int * int) list

  val make : unit -> t

  val classify : Gc_net.Payload.t -> Gc_gbcast.Conflict.klass
  (** [Deposit] is [Commuting]; everything else [Ordered]. *)
end

(** {1 Key-value store}

    Writes to different keys commute; writes to the same key (and all reads)
    conflict — a finer-grained conflict relation exercised directly on
    generic broadcast in the examples. *)
module Kv : sig
  type Gc_net.Payload.t +=
    | Put of { key : string; data : string }
    | Get of { key : string }
    | Kv_value of string option
    | Kv_unit
    | Kv_state of (string * string) list

  val make : unit -> t

  val conflict : Gc_gbcast.Conflict.relation
  (** Puts on distinct keys commute; same-key puts and every get conflict. *)
end

(** {1 Counter} — increments commute; reads conflict with increments. *)
module Counter : sig
  type Gc_net.Payload.t +=
    | Incr of int
    | Read
    | Counter_value of int

  val make : unit -> t
  val classify : Gc_net.Payload.t -> Gc_gbcast.Conflict.klass
end
