type Gc_net.Payload.t +=
  | Req of { cid : int; rid : int; cmd : Gc_net.Payload.t }
  | Rep of { rid : int; result : Gc_net.Payload.t }
  | Redirect of { rid : int; primary : int }

let () =
  Gc_net.Payload.register_printer (function
    | Req { cid; rid; cmd } ->
        Some
          (Printf.sprintf "req#%d.%d(%s)" cid rid (Gc_net.Payload.to_string cmd))
    | Rep { rid; _ } -> Some (Printf.sprintf "rep#%d" rid)
    | Redirect { rid; primary } -> Some (Printf.sprintf "redirect#%d->%d" rid primary)
    | _ -> None)
