(** Client/replica request-reply payloads shared by the replication
    schemes. *)

type Gc_net.Payload.t +=
  | Req of { cid : int; rid : int; cmd : Gc_net.Payload.t }
      (** client request: [cid] the client's node id, [rid] its local request
          number (retries reuse it, giving at-most-once execution) *)
  | Rep of { rid : int; result : Gc_net.Payload.t }
  | Redirect of { rid : int; primary : int }
      (** "not the primary; try there" — how clients learn a new primary *)
