lib/replication/active_gb.ml: Gc_gbcast Gc_net Gc_rchannel Gcs Hashtbl List Printf Rpc State_machine
