lib/replication/client.ml: Array Gc_kernel Gc_net Gc_rchannel Hashtbl Rpc
