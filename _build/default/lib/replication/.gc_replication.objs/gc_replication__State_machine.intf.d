lib/replication/state_machine.mli: Gc_gbcast Gc_net
