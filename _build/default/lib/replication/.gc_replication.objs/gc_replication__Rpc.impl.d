lib/replication/rpc.ml: Gc_net Printf
