lib/replication/passive_vs.mli: Gc_net Gc_sim Gc_traditional State_machine
