lib/replication/client.mli: Gc_kernel Gc_net Gc_sim
