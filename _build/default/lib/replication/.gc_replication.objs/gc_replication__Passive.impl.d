lib/replication/passive.ml: Gc_fd Gc_kernel Gc_membership Gc_net Gc_rchannel Gcs Hashtbl List Printf Rpc State_machine
