lib/replication/passive_vs.ml: Gc_membership Gc_net Gc_rchannel Gc_traditional Hashtbl List Printf Rpc State_machine
