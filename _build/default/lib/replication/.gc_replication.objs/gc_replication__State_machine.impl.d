lib/replication/state_machine.ml: Gc_gbcast Gc_net Hashtbl List Option Printf
