lib/replication/active_gb.mli: Gc_gbcast Gc_net Gc_sim Gcs State_machine
