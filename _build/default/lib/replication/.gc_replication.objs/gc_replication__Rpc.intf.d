lib/replication/rpc.mli: Gc_net
