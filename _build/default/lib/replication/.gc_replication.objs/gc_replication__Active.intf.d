lib/replication/active.mli: Gc_net Gc_sim Gcs State_machine
