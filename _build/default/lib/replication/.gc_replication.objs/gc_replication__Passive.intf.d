lib/replication/passive.mli: Gc_net Gc_sim Gcs State_machine
