lib/replication/active.ml: Gc_net Gc_rchannel Gcs Hashtbl List Printf Rpc State_machine
