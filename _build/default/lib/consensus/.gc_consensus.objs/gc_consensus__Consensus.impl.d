lib/consensus/consensus.ml: Array Gc_fd Gc_kernel Gc_net Gc_rbcast Gc_rchannel Hashtbl List Printf
