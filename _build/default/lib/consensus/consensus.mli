(** Chandra–Toueg ◇S consensus ("Consensus" in Figure 9).

    The rotating-coordinator algorithm of Chandra and Toueg [10], the one the
    paper's architecture rests on: it tolerates [f < n/2] crashes and an
    {e unbounded number of wrong suspicions} — a suspicion costs at most one
    extra round, never an exclusion.  This is precisely why the architecture
    can put atomic broadcast below group membership (Section 3.1.1).

    Each round [r] of instance [i] has the classic four phases:

    + every participant sends its current estimate (with the round stamp of
      its last adoption) to the round's coordinator,
      [coord(r) = members.((r-1) mod n)];
    + the coordinator collects a majority of estimates, adopts one with the
      highest stamp, and proposes it to all;
    + every participant waits for the proposal {e or} a suspicion of the
      coordinator from the failure detector; on proposal it adopts the value
      and acknowledges, then moves to round [r+1]; on suspicion it moves on
      without acknowledging;
    + a coordinator that gathers a majority of acknowledgements reliably
      broadcasts the decision, which stops the instance everywhere.

    Instances are independent and may run concurrently; values are opaque
    network payloads.  A process that receives traffic for an instance it has
    not started is {e solicited}: the layer above is asked to propose, so
    reactive participants join in (used by atomic broadcast). *)

type t

val create :
  Gc_kernel.Process.t ->
  rc:Gc_rchannel.Reliable_channel.t ->
  rb:Gc_rbcast.Reliable_broadcast.t ->
  fd:Gc_fd.Failure_detector.t ->
  ?suspect_timeout:float ->
  ?adaptive:bool ->
  ?round_backoff:float ->
  ?score:(Gc_net.Payload.t -> int) ->
  on_decide:(inst:int -> Gc_net.Payload.t -> unit) ->
  on_solicit:(inst:int -> unit) ->
  unit ->
  t
(** [suspect_timeout] (default 200 ms) is the aggressive timeout of the
    monitor used to suspect coordinators — deliberately small, per
    Section 4.3 of the paper.  [adaptive] (default false) replaces the fixed
    timeout with a Chen-style adaptive monitor
    ({!Gc_fd.Failure_detector.adaptive_monitor}) that self-tunes to the
    observed heartbeat jitter.  [round_backoff] (default 25 ms) paces
    suspicion-driven round changes so that a period in which every
    coordinator is suspected (e.g. a partition) cycles rounds at a bounded
    rate.  [score] breaks ties between same-stamp
    estimates in the coordinator's adoption step (higher wins); the atomic
    broadcast layer uses it to prefer non-empty batches so that decided
    batches make progress.  [on_solicit] fires (once per instance) when
    traffic arrives for an unstarted instance. *)

val propose : t -> inst:int -> members:int list -> Gc_net.Payload.t -> unit
(** Start (or join) instance [inst] among [members] with the given initial
    value.  All participants of an instance must supply the same [members]
    list — in the architecture this is guaranteed because the member list of
    instance [k] is a deterministic function of the decisions
    [0 .. k-1].  Proposing to a decided instance just replays the decision;
    proposing twice is a no-op. *)

val decided : t -> inst:int -> Gc_net.Payload.t option

val started : t -> inst:int -> bool

val rounds_used : t -> inst:int -> int
(** Highest round this process reached in [inst] (1 in the failure-free fast
    path); 0 if never started locally. *)

val instances_decided : t -> int
