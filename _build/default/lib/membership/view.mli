(** Group views.

    A view is an {e ordered list} of members (paper, footnote 10): the
    process at the head of the list acts as the primary where one is
    needed.  Views are numbered; all processes install the same sequence of
    views (primary-partition membership). *)

type t = { vid : int; members : int list }

val initial : int list -> t
(** View number 0 with the given members. *)

val primary : t -> int option
(** Head of the member list. *)

val mem : t -> int -> bool

val size : t -> int

val apply : t -> adds:int list -> removes:int list -> t
(** Next view: drop [removes] (preserving order), append new [adds]
    (deduplicated), bump the view number.  Adds already present and removes
    already absent are ignored; an id in both lists is removed (a
    contradictory batch does not readmit it). *)

val rotate : t -> t
(** Move the head to the tail (same members, same vid): the paper's
    primary-change step for passive replication. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
