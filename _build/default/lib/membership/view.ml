type t = { vid : int; members : int list }

let initial members = { vid = 0; members }
let primary t = match t.members with [] -> None | p :: _ -> Some p
let mem t q = List.mem q t.members
let size t = List.length t.members

let apply t ~adds ~removes =
  let kept = List.filter (fun m -> not (List.mem m removes)) t.members in
  let fresh =
    List.fold_left
      (fun acc p ->
        if List.mem p kept || List.mem p acc || List.mem p removes then acc
        else acc @ [ p ])
      [] adds
  in
  { vid = t.vid + 1; members = kept @ fresh }

let rotate t =
  match t.members with
  | [] | [ _ ] -> t
  | p :: rest -> { t with members = rest @ [ p ] }

let equal a b = a.vid = b.vid && a.members = b.members

let pp ppf t =
  Format.fprintf ppf "v%d[%s]" t.vid
    (String.concat ";" (List.map string_of_int t.members))
