lib/membership/group_membership.ml: Format Gc_kernel Gc_net Gc_rchannel List Option Printf View
