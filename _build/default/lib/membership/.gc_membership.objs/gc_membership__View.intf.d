lib/membership/view.mli: Format
