lib/membership/group_membership.mli: Gc_kernel Gc_net Gc_rchannel View
