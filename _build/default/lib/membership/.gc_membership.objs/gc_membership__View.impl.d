lib/membership/view.ml: Format List String
