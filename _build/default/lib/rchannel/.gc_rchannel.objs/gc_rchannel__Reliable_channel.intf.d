lib/rchannel/reliable_channel.mli: Gc_kernel Gc_net
