lib/rchannel/reliable_channel.ml: Gc_kernel Gc_net Gc_sim Hashtbl List Printf
