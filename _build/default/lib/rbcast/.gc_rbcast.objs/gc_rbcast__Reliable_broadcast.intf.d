lib/rbcast/reliable_broadcast.mli: Gc_kernel Gc_net Gc_rchannel
