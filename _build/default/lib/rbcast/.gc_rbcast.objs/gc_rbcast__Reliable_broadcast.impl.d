lib/rbcast/reliable_broadcast.ml: Gc_kernel Gc_net Gc_rchannel Hashtbl List Printf
