(* Tests for the heartbeat failure detector: completeness (crashed processes
   get suspected), accuracy in calm networks, revision after delay spikes,
   and independent monitors with distinct timeouts. *)

module Engine = Gc_sim.Engine
module Netsim = Gc_net.Netsim
module Process = Gc_kernel.Process
module Fd = Gc_fd.Failure_detector
open Support

let test_detects_crash () =
  let w = make_world ~n:3 () in
  let suspected_at = ref nan in
  let m =
    Fd.monitor w.nodes.(0).fd ~timeout:200.0
      ~on_suspect:(fun q -> if q = 2 then suspected_at := Engine.now w.engine)
      ()
  in
  ignore
    (Engine.schedule w.engine ~delay:500.0 (fun () ->
         Process.crash w.nodes.(2).proc));
  run_until w 2000.0;
  check_bool "suspected" true (Fd.suspected m 2);
  check_bool "within ~timeout+slack" true
    (!suspected_at > 600.0 && !suspected_at < 900.0)

let test_no_false_suspicion_when_calm () =
  let w = make_world ~n:4 () in
  let m =
    Fd.monitor w.nodes.(0).fd ~timeout:200.0 ~on_suspect:(fun _ -> ()) ()
  in
  run_until w 5000.0;
  check_list_int "no suspects" [] (Fd.suspects m);
  check_int "no wrong suspicions" 0 (Fd.wrong_suspicion_count m)

let test_wrong_suspicion_then_trust () =
  let w = make_world ~n:2 () in
  let events = ref [] in
  let m =
    Fd.monitor w.nodes.(0).fd ~timeout:150.0
      ~on_suspect:(fun q -> events := `Suspect q :: !events)
      ~on_trust:(fun q -> events := `Trust q :: !events)
      ()
  in
  (* Node 1 pauses (delay spike on its heartbeats) then recovers. *)
  ignore
    (Engine.schedule w.engine ~delay:1000.0 (fun () ->
         Netsim.delay_spike w.net ~nodes:[ 1 ] ~until:1500.0 ~extra:400.0));
  run_until w 4000.0;
  (match List.rev !events with
  | `Suspect 1 :: `Trust 1 :: _ -> ()
  | _ -> Alcotest.fail "expected suspect then trust");
  check_bool "trusted again at the end" false (Fd.suspected m 1);
  check_bool "counted as wrong" true (Fd.wrong_suspicion_count m >= 1)

let test_two_monitors_distinct_timeouts () =
  (* The paper's point (3.3.2): an aggressive monitor suspects during a
     transient spike while the conservative one never does. *)
  let w = make_world ~n:2 () in
  let fast =
    Fd.monitor w.nodes.(0).fd ~label:"fast" ~timeout:100.0
      ~on_suspect:(fun _ -> ())
      ()
  and slow =
    Fd.monitor w.nodes.(0).fd ~label:"slow" ~timeout:2000.0
      ~on_suspect:(fun _ -> ())
      ()
  in
  ignore
    (Engine.schedule w.engine ~delay:500.0 (fun () ->
         Netsim.delay_spike w.net ~nodes:[ 1 ] ~until:900.0 ~extra:300.0));
  run_until w 5000.0;
  check_bool "fast monitor tripped" true (Fd.suspicion_count fast >= 1);
  check_int "slow monitor silent" 0 (Fd.suspicion_count slow)

let test_stop_monitor () =
  let w = make_world ~n:2 () in
  let count = ref 0 in
  let m =
    Fd.monitor w.nodes.(0).fd ~timeout:100.0 ~on_suspect:(fun _ -> incr count) ()
  in
  Fd.stop m;
  ignore
    (Engine.schedule w.engine ~delay:100.0 (fun () ->
         Process.crash w.nodes.(1).proc));
  run_until w 3000.0;
  check_int "stopped monitor silent" 0 !count

let test_set_peers_clears_suspicion () =
  let w = make_world ~n:3 () in
  let m =
    Fd.monitor w.nodes.(0).fd ~timeout:150.0 ~on_suspect:(fun _ -> ()) ()
  in
  ignore
    (Engine.schedule w.engine ~delay:100.0 (fun () ->
         Process.crash w.nodes.(2).proc));
  run_until w 1000.0;
  check_bool "suspected before removal" true (Fd.suspected m 2);
  Fd.set_peers w.nodes.(0).fd [ 0; 1 ];
  run_until w 1100.0;
  check_bool "removed peer no longer suspected" false (Fd.suspected m 2);
  check_list_int "peer list updated" [ 1 ] (Fd.peers w.nodes.(0).fd)

let test_completeness_all_monitors () =
  (* Every live node's monitor eventually suspects every crashed node. *)
  for_seeds ~count:5 (fun seed ->
      let w = make_world ~seed ~n:5 ~drop:0.05 () in
      let monitors =
        Array.map
          (fun node -> Fd.monitor node.fd ~timeout:300.0 ~on_suspect:(fun _ -> ()) ())
          w.nodes
      in
      ignore
        (Engine.schedule w.engine ~delay:200.0 (fun () ->
             Process.crash w.nodes.(3).proc;
             Process.crash w.nodes.(4).proc));
      run_until w 5000.0;
      List.iter
        (fun i ->
          check_bool "suspects 3" true (Fd.suspected monitors.(i) 3);
          check_bool "suspects 4" true (Fd.suspected monitors.(i) 4))
        [ 0; 1; 2 ])

let test_adaptive_adapts_to_jitter () =
  (* A jittery link (heavy-tailed delays): a fixed 60 ms monitor false-
     suspects, the adaptive one widens its timeout and stays quiet — and
     both still detect a real crash. *)
  (* Uniform 5..100 ms delays on 20 ms heartbeats: inter-arrival gaps reach
     ~115 ms, far past a 60 ms fixed timeout, while the adaptive estimate
     (mean + 4 sigma + margin ~ 190 ms) sits above the maximum gap. *)
  let w =
    make_world ~seed:31L
      ~delay:(Gc_net.Delay.Uniform { lo = 5.0; hi = 100.0 })
      ~n:2 ()
  in
  let fixed =
    Fd.monitor w.nodes.(0).fd ~label:"fixed" ~timeout:60.0
      ~on_suspect:(fun _ -> ())
      ()
  and adaptive =
    Fd.adaptive_monitor w.nodes.(0).fd ~margin:20.0 ~factor:4.0
      ~on_suspect:(fun _ -> ())
      ()
  in
  run_until w 20_000.0;
  check_bool "fixed monitor false-suspects under jitter" true
    (Fd.wrong_suspicion_count fixed > 0);
  (* Adaptive detectors still err occasionally on heavy tails; the property
     is that they err far less than a fixed timeout exposed to the same
     stream. *)
  check_bool
    (Printf.sprintf "adaptive (%d) clearly quieter than fixed (%d)"
       (Fd.wrong_suspicion_count adaptive)
       (Fd.wrong_suspicion_count fixed))
    true
    (Fd.wrong_suspicion_count adaptive = 0
    || Fd.wrong_suspicion_count adaptive * 3 < Fd.wrong_suspicion_count fixed);
  check_bool "adaptive timeout widened beyond the fixed one" true
    (Fd.current_timeout w.nodes.(0).fd adaptive 1 > 60.0);
  Process.crash w.nodes.(1).proc;
  run_until w 30_000.0;
  check_bool "adaptive still detects the crash" true (Fd.suspected adaptive 1)

let test_adaptive_tightens_on_quiet_links () =
  (* On a near-constant-delay link the adaptive timeout converges close to
     the heartbeat period — much tighter than a conservative fixed value. *)
  let w = make_world ~seed:32L ~delay:(Gc_net.Delay.Constant 1.0) ~n:2 () in
  let adaptive =
    Fd.adaptive_monitor w.nodes.(0).fd ~margin:10.0 ~factor:4.0
      ~on_suspect:(fun _ -> ())
      ()
  in
  run_until w 5_000.0;
  let timeout = Fd.current_timeout w.nodes.(0).fd adaptive 1 in
  check_bool
    (Printf.sprintf "tight timeout (%.1f ms)" timeout)
    true
    (timeout < 60.0);
  check_int "no suspicions" 0 (Fd.suspicion_count adaptive)

let suite =
  [
    ( "fd",
      [
        Alcotest.test_case "detects crash" `Quick test_detects_crash;
        Alcotest.test_case "no false suspicion when calm" `Quick
          test_no_false_suspicion_when_calm;
        Alcotest.test_case "wrong suspicion then trust" `Quick
          test_wrong_suspicion_then_trust;
        Alcotest.test_case "two monitors distinct timeouts" `Quick
          test_two_monitors_distinct_timeouts;
        Alcotest.test_case "stop monitor" `Quick test_stop_monitor;
        Alcotest.test_case "set_peers clears suspicion" `Quick
          test_set_peers_clears_suspicion;
        Alcotest.test_case "completeness across seeds" `Quick
          test_completeness_all_monitors;
        Alcotest.test_case "adaptive adapts to jitter" `Quick
          test_adaptive_adapts_to_jitter;
        Alcotest.test_case "adaptive tightens on quiet links" `Quick
          test_adaptive_tightens_on_quiet_links;
      ] );
  ]
