(* Unit and property tests for the simulation substrate: RNG, heap, engine,
   statistics. *)

module Engine = Gc_sim.Engine
module Rng = Gc_sim.Rng
module Heap = Gc_sim.Heap
module Stats = Gc_sim.Stats

let test_rng_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7L in
  let child = Rng.split a in
  (* The child must not replay the parent's continuation. *)
  let parent_next = Rng.int64 a in
  let child_next = Rng.int64 child in
  Alcotest.(check bool) "distinct streams" true (parent_next <> child_next)

let test_rng_int_bounds () =
  let r = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_bernoulli_bias () =
  let r = Rng.create 11L in
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "freq %.3f near 0.3" freq)
    true
    (Float.abs (freq -. 0.3) < 0.02)

let test_rng_exponential_mean () =
  let r = Rng.create 13L in
  let total = ref 0.0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    total := !total +. Rng.exponential r ~mean:5.0
  done;
  let m = !total /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 5.0" m)
    true
    (Float.abs (m -. 5.0) < 0.25)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> log := 2 :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:9.0 (fun () -> log := 3 :: !log));
  Engine.run e;
  Support.check_list_int "execution order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 0.001)) "clock at last event" 9.0 (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:2.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Support.check_list_int "FIFO at equal timestamps" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let t = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel t;
  Engine.run e;
  Support.check_bool "cancelled timer silent" false !fired

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:10.0 (fun () -> incr fired));
  Engine.run ~until:5.0 e;
  Support.check_int "only early event" 1 !fired;
  Alcotest.(check (float 0.001)) "clock parked at limit" 5.0 (Engine.now e);
  Engine.run e;
  Support.check_int "late event after resume" 2 !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:1.0 (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_engine_past_schedule_clamped () =
  let e = Engine.create () in
  let at = ref nan in
  ignore
    (Engine.schedule e ~delay:5.0 (fun () ->
         ignore (Engine.schedule_at e ~time:1.0 (fun () -> at := Engine.now e))));
  Engine.run e;
  Alcotest.(check (float 0.001)) "clamped to now" 5.0 !at

let test_stats_percentiles () =
  let s = Stats.sample () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 0.001)) "median" 50.5 (Stats.median s);
  Alcotest.(check (float 0.001)) "p0" 1.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 0.001)) "p100" 100.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 0.001)) "mean" 50.5 (Stats.mean s);
  Alcotest.(check (float 0.001)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 0.001)) "max" 100.0 (Stats.max_value s)

let test_stats_empty () =
  let s = Stats.sample () in
  Support.check_bool "mean nan" true (Float.is_nan (Stats.mean s));
  Support.check_bool "median nan" true (Float.is_nan (Stats.median s))

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"sample mean between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.sample () in
      List.iter (Stats.add s) xs;
      let m = Stats.mean s in
      m >= Stats.min_value s -. 1e-9 && m <= Stats.max_value s +. 1e-9)

let suite =
  [
    ( "sim",
      [
        Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "rng bernoulli bias" `Quick test_rng_bernoulli_bias;
        Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
        QCheck_alcotest.to_alcotest prop_heap_sorts;
        Alcotest.test_case "engine ordering" `Quick test_engine_ordering;
        Alcotest.test_case "engine same-time fifo" `Quick test_engine_same_time_fifo;
        Alcotest.test_case "engine cancel" `Quick test_engine_cancel;
        Alcotest.test_case "engine run until" `Quick test_engine_run_until;
        Alcotest.test_case "engine nested schedule" `Quick test_engine_nested_schedule;
        Alcotest.test_case "engine past schedule clamped" `Quick
          test_engine_past_schedule_clamped;
        Alcotest.test_case "stats percentiles" `Quick test_stats_percentiles;
        Alcotest.test_case "stats empty" `Quick test_stats_empty;
        QCheck_alcotest.to_alcotest prop_stats_mean_bounded;
      ] );
  ]
