(* Tests for reliable broadcast: validity, agreement among correct processes,
   integrity (no duplication), destination scoping. *)

module Engine = Gc_sim.Engine
module Process = Gc_kernel.Process
module Rb = Gc_rbcast.Reliable_broadcast
open Support

type Gc_net.Payload.t += Item of int

let collect node log =
  Rb.on_deliver node.rb (fun ~origin payload ->
      match payload with Item k -> log := (origin, k) :: !log | _ -> ())

let test_all_deliver () =
  let w = make_world ~n:4 () in
  let logs = Array.map (fun _ -> ref []) w.nodes in
  Array.iteri (fun i node -> collect node logs.(i)) w.nodes;
  Rb.broadcast w.nodes.(0).rb ~dests:(ids 4) (Item 5);
  run_until w 5000.0;
  Array.iter
    (fun log -> Alcotest.(check (list (pair int int))) "delivered" [ (0, 5) ] !log)
    logs

let test_origin_delivers_own () =
  let w = make_world ~n:3 () in
  let log = ref [] in
  collect w.nodes.(1) log;
  Rb.broadcast w.nodes.(1).rb ~dests:(ids 3) (Item 9);
  run_until w 5000.0;
  Alcotest.(check (list (pair int int))) "self delivery" [ (1, 9) ] !log

let test_no_duplication_under_loss () =
  let w = make_world ~seed:11L ~drop:0.3 ~n:4 () in
  let logs = Array.map (fun _ -> ref []) w.nodes in
  Array.iteri (fun i node -> collect node logs.(i)) w.nodes;
  for k = 1 to 20 do
    Rb.broadcast w.nodes.(k mod 4).rb ~dests:(ids 4) (Item k)
  done;
  run_until w 120_000.0;
  Array.iter
    (fun log ->
      check_int "20 distinct messages" 20 (List.length !log);
      let sorted = List.sort_uniq compare !log in
      check_int "no duplicates" 20 (List.length sorted))
    logs

let test_non_destination_does_not_deliver () =
  let w = make_world ~n:4 () in
  let log3 = ref [] in
  collect w.nodes.(3) log3;
  Rb.broadcast w.nodes.(0).rb ~dests:[ 0; 1; 2 ] (Item 1);
  run_until w 5000.0;
  check_int "node 3 excluded" 0 (List.length !log3)

let test_agreement_with_origin_crash () =
  (* The origin crashes just after broadcasting.  Whatever the outcome, all
     correct destinations must agree: either all deliver or none. *)
  for_seeds ~count:10 (fun seed ->
      let w = make_world ~seed ~drop:0.1 ~n:4 () in
      let logs = Array.map (fun _ -> ref []) w.nodes in
      Array.iteri (fun i node -> collect node logs.(i)) w.nodes;
      ignore
        (Engine.schedule w.engine ~delay:100.0 (fun () ->
             Rb.broadcast w.nodes.(0).rb ~dests:(ids 4) (Item 1);
             (* Crash shortly after: the first copies may or may not be out. *)
             ignore
               (Engine.schedule w.engine ~delay:3.0 (fun () ->
                    Process.crash w.nodes.(0).proc))));
      run_until w 60_000.0;
      let delivered i = List.length !(logs.(i)) in
      let outcomes = [ delivered 1; delivered 2; delivered 3 ] in
      check_bool
        (Printf.sprintf "agreement (got %s)"
           (String.concat "," (List.map string_of_int outcomes)))
        true
        (List.for_all (fun d -> d = List.hd outcomes) outcomes))

let test_delivered_count () =
  let w = make_world ~n:3 () in
  Rb.broadcast w.nodes.(0).rb ~dests:(ids 3) (Item 1);
  Rb.broadcast w.nodes.(0).rb ~dests:(ids 3) (Item 2);
  run_until w 5000.0;
  check_int "counted at node 2" 2 (Rb.delivered_count w.nodes.(2).rb)

let suite =
  [
    ( "rbcast",
      [
        Alcotest.test_case "all deliver" `Quick test_all_deliver;
        Alcotest.test_case "origin delivers own" `Quick test_origin_delivers_own;
        Alcotest.test_case "no duplication under loss" `Quick
          test_no_duplication_under_loss;
        Alcotest.test_case "non-destination excluded" `Quick
          test_non_destination_does_not_deliver;
        Alcotest.test_case "agreement with origin crash" `Quick
          test_agreement_with_origin_crash;
        Alcotest.test_case "delivered count" `Quick test_delivered_count;
      ] );
  ]
