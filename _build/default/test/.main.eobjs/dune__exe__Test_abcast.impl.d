test/test_abcast.ml: Alcotest Array Gc_abcast Gc_kernel Gc_net Gc_sim Int64 List Printf QCheck QCheck_alcotest Support
