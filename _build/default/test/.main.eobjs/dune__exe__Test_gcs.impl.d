test/test_gcs.ml: Alcotest Array Gc_gbcast Gc_membership Gc_net Gc_sim Gcs Hashtbl List Printf Support
