test/test_fd.ml: Alcotest Array Gc_fd Gc_kernel Gc_net Gc_sim List Printf Support
