test/test_traditional.ml: Alcotest Array Gc_membership Gc_net Gc_sim Gc_traditional List Printf Support
