test/test_integration.ml: Alcotest Array Gc_abcast Gc_gbcast Gc_membership Gc_net Gc_replication Gc_sim Gcs Hashtbl Int64 List Printf QCheck QCheck_alcotest Rng Support
