test/test_totem.ml: Alcotest Array Gc_membership Gc_net Gc_sim Gc_totem Int64 List QCheck QCheck_alcotest Support
