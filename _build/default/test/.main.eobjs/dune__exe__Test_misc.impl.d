test/test_misc.ml: Alcotest Array Gc_abcast Gc_net Gc_sim List Printf Support
