test/test_soak.ml: Alcotest Array Gc_membership Gc_net Gc_sim Gcs Hashtbl List Printf Support
