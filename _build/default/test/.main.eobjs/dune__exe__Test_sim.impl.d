test/test_sim.ml: Alcotest Float Gc_sim Gen Int List Printf QCheck QCheck_alcotest Support
