test/test_client.ml: Alcotest Gc_kernel Gc_net Gc_rchannel Gc_replication Gc_sim List Support
