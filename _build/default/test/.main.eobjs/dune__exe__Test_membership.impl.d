test/test_membership.ml: Alcotest Array Gc_abcast Gc_kernel Gc_membership Gc_net Gc_sim Gen List Printf QCheck QCheck_alcotest Support
