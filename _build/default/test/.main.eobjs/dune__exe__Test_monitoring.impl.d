test/test_monitoring.ml: Alcotest Array Gc_abcast Gc_kernel Gc_membership Gc_monitoring Gc_net Gc_sim Option Support
