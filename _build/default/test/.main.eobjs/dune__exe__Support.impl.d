test/support.ml: Alcotest Array Gc_consensus Gc_fd Gc_kernel Gc_net Gc_rbcast Gc_rchannel Gc_sim Int64 List
