test/test_gbcast.ml: Alcotest Array Gc_abcast Gc_gbcast Gc_kernel Gc_net Gc_sim Hashtbl Int64 List Printf QCheck QCheck_alcotest Support
