test/test_replication.ml: Alcotest Gc_gbcast Gc_membership Gc_net Gc_replication Gc_sim Gc_traditional Gcs Gen List QCheck QCheck_alcotest Support
