test/test_net.ml: Alcotest Float Gc_net Gc_sim List Printf Support
