test/test_rchannel.ml: Alcotest Array Gc_kernel Gc_net Gc_rchannel Gc_sim Int64 List QCheck QCheck_alcotest Support
