test/main.mli:
