test/test_rbcast.ml: Alcotest Array Gc_kernel Gc_net Gc_rbcast Gc_sim List Printf String Support
