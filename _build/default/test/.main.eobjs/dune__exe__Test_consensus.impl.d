test/test_consensus.ml: Alcotest Array Gc_consensus Gc_kernel Gc_net Gc_sim Int64 List Printf QCheck QCheck_alcotest Support
