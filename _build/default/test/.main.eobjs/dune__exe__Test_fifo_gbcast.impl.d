test/test_fifo_gbcast.ml: Alcotest Array Gc_abcast Gc_gbcast Gc_kernel Gc_net Gc_sim Hashtbl List Printf Support
