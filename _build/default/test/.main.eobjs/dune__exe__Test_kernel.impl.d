test/test_kernel.ml: Alcotest Array Gc_kernel Gc_net Gc_sim List Support
