(* Tests for Chandra–Toueg consensus: validity, (uniform) agreement,
   termination — failure-free, with coordinator crash, with wrong suspicions,
   with concurrent instances, across random schedules. *)

module Engine = Gc_sim.Engine
module Netsim = Gc_net.Netsim
module Process = Gc_kernel.Process
module Consensus = Gc_consensus.Consensus
open Support

type Gc_net.Payload.t += Val of int

let as_val = function Val k -> k | _ -> Alcotest.fail "unexpected payload"

(* Build consensus on every node of a world; returns the instances plus a
   per-node log of (inst, value) decisions. *)
let build ?(suspect_timeout = 200.0) w =
  let n = Array.length w.nodes in
  let logs = Array.make n [] in
  let conss =
    Array.mapi
      (fun i node ->
        Consensus.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd
          ~suspect_timeout
          ~on_decide:(fun ~inst v -> logs.(i) <- (inst, as_val v) :: logs.(i))
          ~on_solicit:(fun ~inst:_ -> ())
          ())
      w.nodes
  in
  (conss, logs)

let decisions logs i = List.sort compare logs.(i)

let test_failure_free_agreement () =
  let w = make_world ~n:3 () in
  let conss, logs = build w in
  Array.iteri
    (fun i c -> Consensus.propose c ~inst:0 ~members:(ids 3) (Val (100 + i)))
    conss;
  run_until w 10_000.0;
  let d0 = decisions logs 0 in
  check_int "one decision" 1 (List.length d0);
  let _, v = List.hd d0 in
  check_bool "validity: decided value was proposed" true (v >= 100 && v <= 102);
  for i = 1 to 2 do
    check_bool "agreement" true (decisions logs i = d0)
  done

let test_single_proposer_solicits_others () =
  (* Only node 0 proposes; the others join reactively via on_solicit. *)
  let w = make_world ~n:3 () in
  let n = 3 in
  let logs = Array.make n [] in
  let conss = Array.make n None in
  Array.iteri
    (fun i node ->
      let c =
        Consensus.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd
          ~on_decide:(fun ~inst v -> logs.(i) <- (inst, as_val v) :: logs.(i))
          ~on_solicit:(fun ~inst ->
            match conss.(i) with
            | Some c -> Consensus.propose c ~inst ~members:(ids n) (Val (200 + i))
            | None -> ())
          ()
      in
      conss.(i) <- Some c)
    w.nodes;
  (match conss.(0) with
  | Some c -> Consensus.propose c ~inst:0 ~members:(ids n) (Val 100)
  | None -> ());
  run_until w 10_000.0;
  for i = 0 to n - 1 do
    check_int (Printf.sprintf "node %d decided" i) 1 (List.length logs.(i))
  done;
  let all_same =
    Array.for_all (fun l -> decisions logs 0 = List.sort compare l) logs
  in
  check_bool "agreement" true all_same

let test_coordinator_crash_terminates () =
  (* Node 0 coordinates round 1 of instance 0; crash it before it can
     decide.  The rotating coordinator must take over. *)
  let w = make_world ~n:3 () in
  let conss, logs = build w in
  Process.crash w.nodes.(0).proc;
  Array.iteri
    (fun i c ->
      if i > 0 then Consensus.propose c ~inst:0 ~members:(ids 3) (Val (100 + i)))
    conss;
  run_until w 30_000.0;
  for i = 1 to 2 do
    check_int (Printf.sprintf "node %d decided" i) 1 (List.length logs.(i))
  done;
  check_bool "agreement" true (decisions logs 1 = decisions logs 2)

let test_crash_during_round () =
  for_seeds ~count:8 (fun seed ->
      let w = make_world ~seed ~n:5 () in
      let conss, logs = build w in
      Array.iteri
        (fun i c -> Consensus.propose c ~inst:0 ~members:(ids 5) (Val (100 + i)))
        conss;
      (* Crash the round-1 coordinator a few ms into the protocol. *)
      ignore
        (Engine.schedule w.engine ~delay:2.0 (fun () ->
             Process.crash w.nodes.(0).proc));
      run_until w 60_000.0;
      let reference = ref None in
      for i = 1 to 4 do
        check_int (Printf.sprintf "node %d decided (seed)" i) 1
          (List.length logs.(i));
        match !reference with
        | None -> reference := Some (decisions logs i)
        | Some r -> check_bool "agreement" true (decisions logs i = r)
      done)

let test_wrong_suspicions_safe () =
  (* Aggressive timeout + delay spikes: lots of wrong suspicions; safety
     must hold and the instance must still decide. *)
  for_seeds ~count:8 (fun seed ->
      let w = make_world ~seed ~n:3 () in
      let conss, logs = build ~suspect_timeout:60.0 w in
      Netsim.delay_spike w.net ~nodes:[ 0 ] ~until:300.0 ~extra:150.0;
      Array.iteri
        (fun i c -> Consensus.propose c ~inst:0 ~members:(ids 3) (Val (100 + i)))
        conss;
      run_until w 60_000.0;
      let d0 = decisions logs 0 in
      check_int "decided despite suspicion churn" 1 (List.length d0);
      for i = 1 to 2 do
        check_bool "agreement" true (decisions logs i = d0)
      done)

let test_concurrent_instances () =
  let w = make_world ~n:3 () in
  let conss, logs = build w in
  for inst = 0 to 4 do
    Array.iteri
      (fun i c ->
        Consensus.propose c ~inst ~members:(ids 3) (Val ((inst * 10) + i)))
      conss
  done;
  run_until w 30_000.0;
  let d0 = decisions logs 0 in
  check_int "all five instances decided" 5 (List.length d0);
  for i = 1 to 2 do
    check_bool "agreement across instances" true (decisions logs i = d0)
  done;
  (* Instances are independent: each decision belongs to its own instance. *)
  List.iter
    (fun (inst, v) -> check_bool "validity per instance" true (v / 10 = inst))
    d0

let test_score_prefers_higher () =
  (* All stamps equal in round 1; the coordinator must adopt the estimate
     with the highest score. *)
  let w = make_world ~n:3 () in
  let n = 3 in
  let logs = Array.make n [] in
  let conss =
    Array.mapi
      (fun i node ->
        Consensus.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd
          ~score:(fun v -> as_val v)
          ~on_decide:(fun ~inst v -> logs.(i) <- (inst, as_val v) :: logs.(i))
          ~on_solicit:(fun ~inst:_ -> ())
          ())
      w.nodes
  in
  Array.iteri
    (fun i c -> Consensus.propose c ~inst:0 ~members:(ids n) (Val (100 + i)))
    conss;
  run_until w 10_000.0;
  (* Round-1 coordinator is node 0; it collects a majority of estimates that
     always includes its own plus at least one other.  With score = value it
     picks the largest value it saw; across schedules that is 101 or 102 —
     never 100. *)
  (match decisions logs 0 with
  | [ (0, v) ] -> check_bool "high score preferred" true (v > 100)
  | _ -> Alcotest.fail "expected one decision");
  check_bool "agreement" true (decisions logs 1 = decisions logs 0)

let test_late_proposer_noop () =
  let w = make_world ~n:3 () in
  let conss, logs = build w in
  Array.iteri
    (fun i c -> Consensus.propose c ~inst:0 ~members:(ids 3) (Val (100 + i)))
    conss;
  run_until w 10_000.0;
  let before = decisions logs 0 in
  (* Propose again after decision: must not decide twice. *)
  Consensus.propose conss.(0) ~inst:0 ~members:(ids 3) (Val 999);
  run_until w 20_000.0;
  check_bool "no second decision" true (decisions logs 0 = before)

let test_two_crashes_n5 () =
  (* f = 2 < n/2 at n = 5: still decides. *)
  for_seeds ~count:6 (fun seed ->
      let w = make_world ~seed ~n:5 () in
      let conss, logs = build w in
      Array.iteri
        (fun i c -> Consensus.propose c ~inst:0 ~members:(ids 5) (Val (100 + i)))
        conss;
      ignore
        (Engine.schedule w.engine ~delay:5.0 (fun () ->
             Process.crash w.nodes.(0).proc));
      ignore
        (Engine.schedule w.engine ~delay:150.0 (fun () ->
             Process.crash w.nodes.(1).proc));
      run_until w 60_000.0;
      let reference = decisions logs 2 in
      check_int "decided with two crashes" 1 (List.length reference);
      for i = 3 to 4 do
        check_bool "agreement" true (decisions logs i = reference)
      done)

let test_minority_partition_never_decides () =
  (* Safety under partition: the side without a majority cannot decide; the
     majority side does; after healing the minority adopts the same
     decision. *)
  for_seeds ~count:5 (fun seed ->
      let w = make_world ~seed ~n:5 () in
      let conss, logs = build w in
      Netsim.partition w.net [ [ 0; 1 ]; [ 2; 3; 4 ] ];
      Array.iteri
        (fun i c -> Consensus.propose c ~inst:0 ~members:(ids 5) (Val (100 + i)))
        conss;
      run_until w 20_000.0;
      check_int "minority blocked" 0 (List.length (decisions logs 0));
      check_int "majority decided" 1 (List.length (decisions logs 2));
      Netsim.heal w.net;
      run_until w 60_000.0;
      check_bool "minority converges after heal" true
        (decisions logs 0 = decisions logs 2
        && decisions logs 1 = decisions logs 2))

let prop_agreement_random_schedules =
  QCheck.Test.make ~name:"consensus agreement across random schedules" ~count:12
    QCheck.(pair small_nat (int_bound 2))
    (fun (seed, crash_idx) ->
      let n = 5 in
      let w = make_world ~seed:(Int64.of_int (seed * 7919)) ~drop:0.05 ~n () in
      let logs = Array.make n [] in
      let conss =
        Array.mapi
          (fun i node ->
            Consensus.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd
              ~on_decide:(fun ~inst v -> logs.(i) <- (inst, as_val v) :: logs.(i))
              ~on_solicit:(fun ~inst:_ -> ())
              ())
          w.nodes
      in
      Array.iteri
        (fun i c -> Consensus.propose c ~inst:0 ~members:(ids n) (Val (100 + i)))
        conss;
      ignore
        (Engine.schedule w.engine ~delay:(float_of_int (seed mod 50)) (fun () ->
             Process.crash w.nodes.(crash_idx).proc));
      Engine.run ~until:120_000.0 w.engine;
      (* All survivors decided the same single value, and it was proposed. *)
      let ok = ref true in
      let reference = ref None in
      for i = 0 to n - 1 do
        if i <> crash_idx then begin
          (match logs.(i) with
          | [ (0, v) ] ->
              if v < 100 || v > 104 then ok := false;
              (match !reference with
              | None -> reference := Some v
              | Some r -> if r <> v then ok := false)
          | _ -> ok := false)
        end
      done;
      !ok)

let suite =
  [
    ( "consensus",
      [
        Alcotest.test_case "failure-free agreement" `Quick
          test_failure_free_agreement;
        Alcotest.test_case "single proposer solicits others" `Quick
          test_single_proposer_solicits_others;
        Alcotest.test_case "coordinator crash terminates" `Quick
          test_coordinator_crash_terminates;
        Alcotest.test_case "crash during round (seeds)" `Slow
          test_crash_during_round;
        Alcotest.test_case "wrong suspicions safe (seeds)" `Slow
          test_wrong_suspicions_safe;
        Alcotest.test_case "concurrent instances" `Quick test_concurrent_instances;
        Alcotest.test_case "score prefers higher" `Quick test_score_prefers_higher;
        Alcotest.test_case "late proposer noop" `Quick test_late_proposer_noop;
        Alcotest.test_case "two crashes at n=5" `Slow test_two_crashes_n5;
        Alcotest.test_case "minority partition never decides" `Slow
          test_minority_partition_never_decides;
        QCheck_alcotest.to_alcotest prop_agreement_random_schedules;
      ] );
  ]
