(* Tests for the monitoring component: exclusion policies and their
   interaction with wrong suspicions. *)

module Engine = Gc_sim.Engine
module Netsim = Gc_net.Netsim
module Process = Gc_kernel.Process
module Ab = Gc_abcast.Atomic_broadcast
module View = Gc_membership.View
module Gm = Gc_membership.Group_membership
module Mon = Gc_monitoring.Monitoring
open Support

type Gc_net.Payload.t += Probe

let build ?(exclusion_timeout = 400.0) ~policy w =
  let n = Array.length w.nodes in
  let gms = Array.make n None in
  let mons =
    Array.mapi
      (fun i node ->
        let ab =
          Ab.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd
            ~members:(ids n) ()
        in
        let transport =
          {
            Gm.broadcast = (fun payload -> Ab.abcast ab payload);
            subscribe = (fun f -> Ab.on_deliver ab f);
          }
        in
        let gm =
          Gm.create node.proc ~rc:node.rc ~transport
            ~initial:(View.initial (ids n)) ()
        in
        Gm.on_view gm (fun v -> Ab.set_members ab v.View.members);
        gms.(i) <- Some gm;
        Mon.create node.proc ~fd:node.fd ~rc:node.rc ~membership:gm
          ~exclusion_timeout ~policy ())
      w.nodes
  in
  let gm i = Option.get gms.(i) in
  (gm, mons)

let test_threshold_excludes_crashed () =
  let w = make_world ~n:4 () in
  let gm, mons = build ~policy:(Mon.Threshold 2) w in
  ignore
    (Engine.schedule w.engine ~delay:500.0 (fun () ->
         Process.crash w.nodes.(3).proc));
  run_until w 20_000.0;
  check_list_int "crashed excluded" [ 0; 1; 2 ] (Gm.view (gm 0)).View.members;
  let wrongful =
    Array.fold_left (fun acc m -> acc + Mon.wrongful_exclusions_proposed m) 0 mons
  in
  check_int "no wrongful exclusions" 0 wrongful

let test_immediate_excludes_fast_but_wrongly () =
  (* Immediate policy: a transient spike already causes an exclusion. *)
  let w = make_world ~n:3 () in
  let _gm, mons = build ~exclusion_timeout:300.0 ~policy:Mon.Immediate w in
  Netsim.delay_spike w.net ~nodes:[ 2 ] ~until:1500.0 ~extra:800.0;
  run_until w 20_000.0;
  let wrongful =
    Array.fold_left (fun acc m -> acc + Mon.wrongful_exclusions_proposed m) 0 mons
  in
  check_bool "wrongful exclusion happened" true (wrongful >= 1)

let test_threshold_resists_local_spike () =
  (* Only the link 2->0 degrades: node 0 suspects node 2, but nobody else
     does, so Threshold 2 never excludes. *)
  let w = make_world ~n:4 () in
  let gm, mons = build ~exclusion_timeout:300.0 ~policy:(Mon.Threshold 2) w in
  Netsim.set_link w.net ~src:2 ~dst:0 ~drop:1.0 ();
  run_until w 20_000.0;
  check_int "no exclusion" 4 (View.size (Gm.view (gm 0)));
  let proposed =
    Array.fold_left (fun acc m -> acc + Mon.exclusions_proposed m) 0 mons
  in
  check_int "nothing proposed" 0 proposed

let test_threshold_retraction () =
  (* A global spike shorter than the exclusion timeout: suspicions arise at
     the consensus timescale but are retracted before the conservative
     monitor would act. *)
  let w = make_world ~n:3 () in
  let gm, _ = build ~exclusion_timeout:2000.0 ~policy:(Mon.Threshold 2) w in
  Netsim.delay_spike w.net ~nodes:[ 2 ] ~until:1000.0 ~extra:500.0;
  run_until w 20_000.0;
  check_int "transient spike ignored" 3 (View.size (Gm.view (gm 0)))

let test_output_triggered () =
  let w = make_world ~stuck_after:600.0 ~n:3 () in
  let gm, mons = build ~policy:Mon.Output_triggered w in
  ignore
    (Engine.schedule w.engine ~delay:100.0 (fun () ->
         Process.crash w.nodes.(2).proc));
  (* Generate output towards the dead process so the channel gets stuck. *)
  ignore
    (Engine.schedule w.engine ~delay:200.0 (fun () ->
         Support.Rc.send w.nodes.(0).rc ~dst:2 Probe));
  run_until w 30_000.0;
  check_list_int "excluded via stuck output" [ 0; 1 ] (Gm.view (gm 0)).View.members;
  check_bool "proposed by node 0" true (Mon.exclusions_proposed mons.(0) >= 1)

let test_threshold_or_output_uses_both_paths () =
  (* The combined policy fires on whichever evidence arrives first: gossip
     corroboration for a silent crash, the stuck channel when there is
     pending output. *)
  let w = make_world ~stuck_after:600.0 ~n:4 () in
  let gm, mons = build ~policy:(Mon.Threshold_or_output 2) w in
  ignore
    (Engine.schedule w.engine ~delay:300.0 (fun () ->
         Process.crash w.nodes.(3).proc));
  run_until w 20_000.0;
  check_list_int "crashed excluded" [ 0; 1; 2 ] (Gm.view (gm 0)).View.members;
  let wrongful =
    Array.fold_left (fun acc m -> acc + Mon.wrongful_exclusions_proposed m) 0 mons
  in
  check_int "no wrongful" 0 wrongful

let test_output_triggered_needs_traffic () =
  (* Without output towards the dead process, the output-triggered policy has
     nothing to observe and never excludes. *)
  let w = make_world ~stuck_after:600.0 ~n:3 () in
  let gm, _ = build ~policy:Mon.Output_triggered w in
  ignore
    (Engine.schedule w.engine ~delay:300.0 (fun () ->
         Process.crash w.nodes.(2).proc));
  run_until w 20_000.0;
  check_int "no exclusion without output evidence" 3
    (View.size (Gm.view (gm 0)))

let test_stopped_monitoring_is_silent () =
  let w = make_world ~n:3 () in
  let gm, mons = build ~policy:(Mon.Threshold 1) w in
  Array.iter Mon.stop mons;
  ignore
    (Engine.schedule w.engine ~delay:200.0 (fun () ->
         Process.crash w.nodes.(2).proc));
  run_until w 20_000.0;
  check_int "no exclusion after stop" 3 (View.size (Gm.view (gm 0)))

let suite =
  [
    ( "monitoring",
      [
        Alcotest.test_case "threshold excludes crashed" `Quick
          test_threshold_excludes_crashed;
        Alcotest.test_case "immediate is trigger-happy" `Quick
          test_immediate_excludes_fast_but_wrongly;
        Alcotest.test_case "threshold resists local spike" `Quick
          test_threshold_resists_local_spike;
        Alcotest.test_case "threshold retraction" `Quick test_threshold_retraction;
        Alcotest.test_case "output-triggered exclusion" `Quick test_output_triggered;
        Alcotest.test_case "stopped monitoring silent" `Quick
          test_stopped_monitoring_is_silent;
        Alcotest.test_case "threshold-or-output combined" `Quick
          test_threshold_or_output_uses_both_paths;
        Alcotest.test_case "output-triggered needs traffic" `Quick
          test_output_triggered_needs_traffic;
      ] );
  ]
