examples/primary_backup.mli:
