examples/quickstart.ml: Array Format Gc_gbcast Gc_membership Gc_net Gc_sim Gcs Printf
