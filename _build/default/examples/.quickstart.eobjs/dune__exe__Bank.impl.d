examples/bank.ml: Gc_abcast Gc_gbcast Gc_net Gc_replication Gc_sim Gcs List Printf
