examples/bank.mli:
