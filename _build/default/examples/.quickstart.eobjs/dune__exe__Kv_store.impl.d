examples/kv_store.ml: Array Gc_abcast Gc_fd Gc_gbcast Gc_kernel Gc_net Gc_rbcast Gc_rchannel Gc_replication Gc_sim List Printf
