examples/partition.mli:
