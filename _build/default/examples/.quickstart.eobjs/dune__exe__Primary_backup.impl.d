examples/primary_backup.ml: Gc_net Gc_replication Gc_sim Int64 List Printf
