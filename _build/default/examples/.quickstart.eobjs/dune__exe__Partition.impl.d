examples/partition.ml: Array Format Gc_kernel Gc_membership Gc_net Gc_sim Gcs Printf
