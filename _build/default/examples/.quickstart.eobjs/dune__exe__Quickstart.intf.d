examples/quickstart.mli:
