bench/main.mli:
