bench/e7_scalability.ml: Bench_util Engine List Netsim Stack Stats Tr Tt
