bench/e8_monitoring_policies.ml: Array Bench_util Engine Float Gc_monitoring List Printf Stack Stats View
