bench/e5_view_change_blocking.ml: Array Bench_util Engine Gc_membership List Printf Stack Stats Tr
