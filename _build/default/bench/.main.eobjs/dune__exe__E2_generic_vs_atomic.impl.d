bench/e2_generic_vs_atomic.ml: Bench_util Engine Gc_abcast Gc_gbcast Gc_replication List Netsim Printf Rng Stack Stats
