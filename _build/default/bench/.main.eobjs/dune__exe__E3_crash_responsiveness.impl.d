bench/e3_crash_responsiveness.ml: Array Bench_util Engine Gc_monitoring List Printf Stack Stats Tr
