bench/e4_false_suspicions.ml: Array Bench_util Engine List Printf Stack Stats Tr View
