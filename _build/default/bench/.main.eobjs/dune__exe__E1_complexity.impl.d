bench/e1_complexity.ml: Array Bench_util Engine Gc_sim List Netsim Stack Tr Tt
