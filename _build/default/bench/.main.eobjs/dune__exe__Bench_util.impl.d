bench/bench_util.ml: Array Float Gc_membership Gc_net Gc_sim Gc_totem Gc_traditional Gcs List Printf
