bench/e6_passive_replication.ml: Bench_util Engine Gc_gbcast Gc_replication Int64 List Netsim Stack Stats Tr
