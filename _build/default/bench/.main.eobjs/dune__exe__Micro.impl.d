bench/micro.ml: Bechamel Bench_util Engine Hashtbl Printf Stack Tr
