bench/e9_same_view_delivery.ml: Array Bench_util Engine Hashtbl List Printf Stack Stats Tr View
