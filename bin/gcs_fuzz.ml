(* gcs_fuzz — randomized fault-schedule explorer with auditor oracle and
   counterexample shrinking.

     dune exec bin/gcs_fuzz.exe -- run --seeds 100 --stack all
     dune exec bin/gcs_fuzz.exe -- run --seeds 200 --stack abgb --profile aggressive
     dune exec bin/gcs_fuzz.exe -- replay corpus/abgb-seed42.json
     dune exec bin/gcs_fuzz.exe -- shrink failures/totem-seed7.json

   [run] sweeps N generated fault scripts per stack, audits every recorded
   run, and shrinks any unwaived violation to a minimal replayable JSON
   artifact (plus its trace).  [replay] re-runs an artifact and asserts
   bit-for-bit determinism against the stored trace.  [shrink] re-minimises
   an existing artifact (e.g. with a bigger parameter budget). *)

module Audit = Gc_obs.Audit
module Fault_script = Gc_faultgen.Fault_script
module Generator = Gc_faultgen.Generator
module Harness = Gc_fuzz.Harness
module Campaign = Gc_fuzz.Campaign

let parse_stacks = function
  | "all" -> Ok Harness.all_stacks
  | s ->
      let names = String.split_on_char ',' s in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
            match Harness.stack_of_string (String.trim n) with
            | Some k -> go (k :: acc) rest
            | None -> Error (Printf.sprintf "unknown stack %S" n))
      in
      go [] names

let parse_profile = function
  | "default" -> Ok Generator.default
  | "aggressive" -> Ok Generator.aggressive
  | "restart" -> Ok Generator.restart
  | s -> Error (Printf.sprintf "unknown profile %S (default|aggressive|restart)" s)

(* ---------- run ---------- *)

let run_cmd seeds first_seed stack_s profile_s nodes horizon casts out
    inject_reorder =
  match (parse_stacks stack_s, parse_profile profile_s) with
  | Error msg, _ | _, Error msg ->
      Printf.eprintf "gcs_fuzz: %s\n" msg;
      2
  | Ok stacks, Ok profile ->
      let seed_list =
        List.init seeds (fun i -> Int64.add first_seed (Int64.of_int i))
      in
      let summary =
        Campaign.sweep ~profile ~nodes ~horizon ~casts ~inject_reorder
          ~artifact_dir:out ~log:print_endline ~stacks ~seeds:seed_list ()
      in
      Printf.printf
        "\n%d runs: %d clean, %d waived-only, %d failures\n"
        summary.Campaign.runs summary.Campaign.clean
        summary.Campaign.waived_runs
        (List.length summary.Campaign.found);
      List.iter
        (fun (f : Campaign.found) ->
          Printf.printf "  %s seed=%Ld: %s (%d -> %d events, %d shrink runs)%s\n"
            (Harness.stack_to_string f.Campaign.failure.Campaign.stack)
            f.Campaign.original.Fault_script.seed
            (String.concat ","
               (List.map Audit.check_to_string
                  f.Campaign.failure.Campaign.checks))
            (List.length f.Campaign.original.Fault_script.events)
            (List.length
               f.Campaign.failure.Campaign.script.Fault_script.events)
            f.Campaign.shrink_runs
            (match f.Campaign.artifact with
            | Some p -> " -> " ^ p
            | None -> ""))
        summary.Campaign.found;
      if summary.Campaign.found = [] then 0 else 1

(* ---------- replay ---------- *)

let replay_cmd file =
  match Campaign.replay file with
  | exception Sys_error msg ->
      Printf.eprintf "gcs_fuzz: %s\n" msg;
      2
  | exception Failure msg ->
      Printf.eprintf "gcs_fuzz: %s: %s\n" file msg;
      2
  | f, o, matches ->
      Printf.printf "replayed %s: stack=%s seed=%Ld events=%d delivered=%d\n"
        file
        (Harness.stack_to_string f.Campaign.stack)
        f.Campaign.script.Fault_script.seed
        (List.length o.Harness.events)
        o.Harness.delivered;
      Format.printf "%a@?" Audit.pp_report o.Harness.report;
      let reproduced = not (Audit.ok o.Harness.report) in
      Printf.printf "violation %s\n"
        (if reproduced then "reproduced" else "NOT reproduced");
      (match matches with
      | Some true -> Printf.printf "trace: identical to stored recording\n"
      | Some false -> Printf.printf "trace: DIVERGES from stored recording\n"
      | None -> Printf.printf "trace: no stored recording to compare\n");
      if reproduced && matches <> Some false then 0 else 1

(* ---------- shrink ---------- *)

let shrink_cmd file max_param_runs =
  match Campaign.load file with
  | exception Sys_error msg ->
      Printf.eprintf "gcs_fuzz: %s\n" msg;
      2
  | exception Failure msg ->
      Printf.eprintf "gcs_fuzz: %s: %s\n" file msg;
      2
  | f ->
      if not (Campaign.reproduces f) then begin
        Printf.eprintf
          "gcs_fuzz: %s no longer reproduces its violation — nothing to \
           shrink\n"
          file;
        1
      end
      else begin
        let s = Campaign.shrink ~max_param_runs f in
        let shrunk = { f with Campaign.script = s.Gc_faultgen.Shrink.result } in
        let o = Campaign.run_failure shrunk in
        let dir = Filename.dirname file in
        let name =
          Filename.remove_extension (Filename.basename file) ^ "-min"
        in
        let path = Campaign.save ~dir ~name shrunk o in
        Printf.printf "%d -> %d events in %d runs; written to %s\n"
          (List.length f.Campaign.script.Fault_script.events)
          (List.length s.Gc_faultgen.Shrink.result.Fault_script.events)
          s.Gc_faultgen.Shrink.runs path;
        0
      end

(* ---------- rerecord ---------- *)

let rerecord_cmd file =
  match Campaign.load file with
  | exception Sys_error msg ->
      Printf.eprintf "gcs_fuzz: %s\n" msg;
      2
  | exception Failure msg ->
      Printf.eprintf "gcs_fuzz: %s: %s\n" file msg;
      2
  | f ->
      let o = Campaign.run_failure f in
      let now = Campaign.violated_checks o.Harness.report in
      if not (List.exists (fun c -> List.mem c now) f.Campaign.checks) then begin
        Printf.eprintf
          "gcs_fuzz: %s no longer reproduces its violation — refusing to \
           re-record (the artifact itself is stale, not just the trace)\n"
          file;
        1
      end
      else begin
        let tp = Campaign.trace_path file in
        Gc_obs.Event.save_jsonl tp o.Harness.events;
        Printf.printf "re-recorded %s (%d events)\n" tp
          (List.length o.Harness.events);
        0
      end

(* ---------- cmdliner plumbing ---------- *)

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FAILURE" ~doc:"Failure artifact written by $(b,run).")

let run_term =
  let seeds =
    Arg.(
      value & opt int 50
      & info [ "seeds" ] ~docv:"N" ~doc:"Fault scripts to try per stack.")
  and first_seed =
    Arg.(
      value & opt int64 1L
      & info [ "first-seed" ] ~docv:"S"
          ~doc:"First seed; seeds S, S+1, ... S+N-1 are swept.")
  and stack =
    Arg.(
      value & opt string "all"
      & info [ "stack" ] ~docv:"STACKS"
          ~doc:
            "Comma-separated stacks to fuzz: $(b,abgb), $(b,gbcast), \
             $(b,traditional), $(b,totem), or $(b,all).")
  and profile =
    Arg.(
      value & opt string "default"
      & info [ "profile" ] ~docv:"P"
          ~doc:
            "Generator profile: $(b,default) (liveness-safe windows), \
             $(b,aggressive) (longer freezes, more events), or \
             $(b,restart) (aggressive plus kill -9 reboots from the \
             durable log).")
  and nodes =
    Arg.(
      value & opt int 5
      & info [ "nodes" ] ~docv:"N" ~doc:"Group size.")
  and horizon =
    Arg.(
      value & opt float 12_000.0
      & info [ "horizon" ] ~docv:"MS" ~doc:"Virtual run length, ms.")
  and casts =
    Arg.(
      value & opt int 12
      & info [ "casts" ] ~docv:"K" ~doc:"Broadcasts per run.")
  and out =
    Arg.(
      value & opt string "fuzz-failures"
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:"Directory for failure artifacts and traces.")
  and inject_reorder =
    Arg.(
      value & flag
      & info [ "inject-reorder" ]
          ~doc:
            "Self-test hook: corrupt each recorded history by swapping two \
             ordered deliveries, to prove the oracle catches reorders and \
             shrinking strips fault-independent failures to (almost) \
             nothing.")
  in
  Term.(
    const run_cmd $ seeds $ first_seed $ stack $ profile $ nodes $ horizon
    $ casts $ out $ inject_reorder)

let replay_term = Term.(const replay_cmd $ file_arg)

let shrink_term =
  let max_param_runs =
    Arg.(
      value & opt int 200
      & info [ "max-param-runs" ] ~docv:"N"
          ~doc:"Simulation budget for the parameter-simplification pass.")
  in
  Term.(const shrink_cmd $ file_arg $ max_param_runs)

let cmds =
  [
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Sweep generated fault scripts over the stacks, audit every run, \
            shrink and save any failure (exit 1 if any was found)")
      run_term;
    Cmd.v
      (Cmd.info "replay"
         ~doc:
           "Re-run a failure artifact; exit 0 iff the violation reproduces \
            and the re-recorded trace matches the stored one bit-for-bit")
      replay_term;
    Cmd.v
      (Cmd.info "shrink" ~doc:"Re-minimise an existing failure artifact")
      shrink_term;
    Cmd.v
      (Cmd.info "rerecord"
         ~doc:
           "Re-run a failure artifact and overwrite its sibling trace with \
            the fresh recording.  For intentional behaviour changes that \
            shift event timings: the violation must still reproduce, only \
            the stored history is refreshed.  Review the trace diff before \
            committing.")
      Term.(const rerecord_cmd $ file_arg);
  ]

let () =
  let doc = "randomized fault-schedule explorer for the GCS stacks" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "gcs_fuzz" ~doc) cmds))
