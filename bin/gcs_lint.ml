(* gcs_lint — determinism-and-layering static analysis for the GCS repo.

     gcs_lint check [--root DIR] [--no-typed]      lint lib/** bin/ bench/,
                                                   exit 1 on findings
     gcs_lint graph [--root DIR] [--dot FILE]      dump the architecture DAG
     gcs_lint callgraph [--root DIR] [--dot FILE]  dump the event-loop
                                                   reachability graph

   Rules and the architecture spec live in lib/lint (Gc_lint.Catalog);
   DESIGN.md sections 11 and 16 document them.  The typed rules (W2/W3,
   B1/B2, E2) and the callgraph read the .cmt files of the last build:
   run `dune build @all` first. *)

open Cmdliner

let root_arg =
  let doc = "Repository root (the directory containing lib/)." in
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)

let rules_flag =
  let doc = "Print the rule catalog and exit." in
  Arg.(value & flag & info [ "rules" ] ~doc)

let no_typed_flag =
  let doc =
    "Skip the typedtree rules (W2/W3, B1/B2, E2); parsetree and layering \
     rules only.  Useful before the first build."
  in
  Arg.(value & flag & info [ "no-typed" ] ~doc)

let check_cmd =
  let run root rules no_typed =
    if rules then begin
      List.iter
        (fun r -> Printf.printf "%-3s %s\n" r (Gc_lint.Catalog.rule_summary r))
        Gc_lint.Catalog.rule_ids;
      0
    end
    else begin
      let r = Gc_lint.Lint.run ~typed:(not no_typed) ~root () in
      Format.printf "%a@?" Gc_lint.Lint.pp_report r;
      if r.Gc_lint.Lint.findings = [] then 0 else 1
    end
  in
  let doc =
    "Lint lib/**, bin/ and bench/ for determinism, event discipline, \
     layering, wire-codec safety and loop reachability."
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(const run $ root_arg $ rules_flag $ no_typed_flag)

let dot_arg =
  let doc = "Write the graphviz dot output to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let emit_dot ~dot render =
  match dot with
  | None -> print_string (render ())
  | Some file ->
      let oc = open_out file in
      output_string oc (render ());
      close_out oc;
      Printf.printf "wrote %s\n" file

let graph_cmd =
  let run root dot =
    let r = Gc_lint.Lint.run ~typed:false ~root () in
    emit_dot ~dot (fun () ->
        let buf = Buffer.create 1024 in
        let ppf = Format.formatter_of_buffer buf in
        Gc_lint.Arch.to_dot ppf r.Gc_lint.Lint.libs;
        Format.pp_print_flush ppf ();
        Buffer.contents buf);
    0
  in
  let doc = "Dump the library dependency DAG (graphviz dot)." in
  Cmd.v (Cmd.info "graph" ~doc) Term.(const run $ root_arg $ dot_arg)

let callgraph_cmd =
  let run root dot =
    let units = Gc_lint.Typed_loader.load ~root in
    if units = [] then begin
      prerr_endline
        "gcs_lint: no .cmt files found — run `dune build @all` first";
      1
    end
    else begin
      let g = Gc_lint.Callgraph.build units in
      emit_dot ~dot (fun () -> Gc_lint.Callgraph.to_dot g);
      0
    end
  in
  let doc =
    "Dump the event-loop reachability graph (graphviz dot): callback roots \
     and everything they can call."
  in
  Cmd.v (Cmd.info "callgraph" ~doc) Term.(const run $ root_arg $ dot_arg)

let () =
  let doc = "static analysis: determinism, event discipline, layering" in
  let info = Cmd.info "gcs_lint" ~version:"%%VERSION%%" ~doc in
  exit (Cmd.eval' (Cmd.group info [ check_cmd; graph_cmd; callgraph_cmd ]))
