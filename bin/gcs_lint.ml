(* gcs_lint — determinism-and-layering static analysis for the GCS repo.

     gcs_lint check [--root DIR]          lint lib/**, exit 1 on findings
     gcs_lint graph [--root DIR] [--dot FILE]   dump the architecture DAG

   Rules and the architecture spec live in lib/lint (Gc_lint.Catalog);
   DESIGN.md section 11 documents them. *)

open Cmdliner

let root_arg =
  let doc = "Repository root (the directory containing lib/)." in
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)

let rules_flag =
  let doc = "Print the rule catalog and exit." in
  Arg.(value & flag & info [ "rules" ] ~doc)

let check_cmd =
  let run root rules =
    if rules then begin
      List.iter
        (fun r -> Printf.printf "%-3s %s\n" r (Gc_lint.Catalog.rule_summary r))
        Gc_lint.Catalog.rule_ids;
      0
    end
    else begin
      let r = Gc_lint.Lint.run ~root in
      Format.printf "%a@?" Gc_lint.Lint.pp_report r;
      if r.Gc_lint.Lint.findings = [] then 0 else 1
    end
  in
  let doc = "Lint lib/** for determinism, event-discipline and layering." in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(const run $ root_arg $ rules_flag)

let graph_cmd =
  let run root dot =
    let r = Gc_lint.Lint.run ~root in
    let emit ppf = Gc_lint.Arch.to_dot ppf r.Gc_lint.Lint.libs in
    (match dot with
    | None -> emit Format.std_formatter
    | Some file ->
        let oc = open_out file in
        let ppf = Format.formatter_of_out_channel oc in
        emit ppf;
        Format.pp_print_flush ppf ();
        close_out oc;
        Printf.printf "wrote %s\n" file);
    0
  in
  let dot_arg =
    let doc = "Write the graphviz dot output to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)
  in
  let doc = "Dump the library dependency DAG (graphviz dot)." in
  Cmd.v (Cmd.info "graph" ~doc) Term.(const run $ root_arg $ dot_arg)

let () =
  let doc = "static analysis: determinism, event discipline, layering" in
  let info = Cmd.info "gcs_lint" ~version:"%%VERSION%%" ~doc in
  exit (Cmd.eval' (Cmd.group info [ check_cmd; graph_cmd ]))
