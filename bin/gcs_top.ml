(* gcs_top — live terminal dashboard over the gcs_server Stats endpoint.

     dune exec bin/gcs_top.exe -- --servers 8001,8002,8003
     dune exec bin/gcs_top.exe -- --servers 8001,8002,8003 --once --assert-live

   Every --interval ms it scrapes Cl_stats (JSON) from each replica,
   subtracts the previous snapshot (Gc_obs.Snapshot.delta) and shows
   per-window throughput, submit->deliver latency percentiles,
   event-loop health and whether the replicas' order digests agree.

   --once prints a single table instead of redrawing; adding
   --assert-live turns that into a health gate: exit 0 only if every
   replica answers with a parseable snapshot showing delivered abcast
   traffic, a populated latency histogram with finite p99, event-loop
   profiling, and an order digest identical to every other replica's
   (what the CI loopback job runs mid-load). *)

module C = Gc_server.Sync_client
module Json = Gc_obs.Json
module Snapshot = Gc_obs.Snapshot
open Cmdliner

type sample = {
  node : int;
  uptime_ms : float;
  vid : int;
  members : int;
  clients : int;
  ordered : int;
  commuting : int;
  order_digest : string;
  state_digest : string;
  snap : Snapshot.t;
}

let parse_server spec =
  match String.rindex_opt spec ':' with
  | None -> (
      match int_of_string_opt spec with
      | Some port -> Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      | None -> Error (Printf.sprintf "bad server %S" spec))
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match (Unix.inet_addr_of_string host, int_of_string_opt port) with
      | addr, Some port -> Ok (Unix.ADDR_INET (addr, port))
      | exception Failure _ -> Error (Printf.sprintf "bad server host %S" spec)
      | _, None -> Error (Printf.sprintf "bad server port %S" spec))

let num k j =
  match Option.bind (Json.member k j) Json.to_float with
  | Some f -> f
  | None -> nan

let str k j =
  match Option.bind (Json.member k j) Json.to_str with
  | Some s -> s
  | None -> "?"

let sample_of_body body =
  match Json.of_string body with
  | exception Json.Parse_error e -> Error ("bad stats json: " ^ e)
  | j -> (
      let kv = Option.value (Json.member "kv" j) ~default:Json.Null in
      let view = Option.value (Json.member "view" j) ~default:Json.Null in
      let members =
        match Option.bind (Json.member "members" view) Json.to_list with
        | Some l -> List.length l
        | None -> 0
      in
      let clients =
        match Option.bind (Json.member "clients" j) Json.to_list with
        | Some l -> List.length l
        | None -> 0
      in
      match Json.member "metrics" j with
      | None -> Error "stats json lacks \"metrics\""
      | Some m -> (
          match Snapshot.of_json m with
          | exception Invalid_argument e -> Error ("bad metrics: " ^ e)
          | snap ->
              Ok
                {
                  node = int_of_float (num "node" j);
                  uptime_ms = num "uptime_ms" j;
                  vid = int_of_float (num "vid" view);
                  members;
                  clients;
                  ordered = int_of_float (num "ordered" kv);
                  commuting = int_of_float (num "commuting" kv);
                  order_digest = str "order_digest" kv;
                  state_digest = str "state_digest" kv;
                  snap;
                }))

let poll addr =
  match C.connect addr with
  | Error msg -> Error ("connect: " ^ msg)
  | Ok c ->
      let r = C.stats c ~timeout:5000.0 () in
      C.close c;
      (match r with
      | Ok body -> sample_of_body body
      | Error e -> Error (C.error_to_string e))

let pct v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" v

let lat_cell snap name =
  if Snapshot.hist_count snap name = 0 then "-"
  else
    Printf.sprintf "%s/%s/%s/%s"
      (pct (Snapshot.quantile snap name 0.50))
      (pct (Snapshot.quantile snap name 0.90))
      (pct (Snapshot.quantile snap name 0.99))
      (pct (Snapshot.hist_max snap name))

let digest_tag all_digests d =
  let short = if String.length d >= 8 then String.sub d 0 8 else d in
  let agree =
    match all_digests with
    | [] -> true
    | first :: rest -> List.for_all (( = ) first) rest
  in
  if agree then short ^ " =" else short ^ " !"

(* One table row per replica.  [window] is the delta snapshot since the
   previous poll when there is one (rates and fresh latency), otherwise
   the cumulative snapshot. *)
let render results prev =
  let order_digests =
    List.filter_map
      (fun (_, r) -> match r with Ok s -> Some s.order_digest | _ -> None)
      results
  in
  Printf.printf "%-14s %6s %4s %4s %4s %9s %8s %-22s %8s %8s %-11s\n" "SERVER"
    "UP(s)" "VID" "MEM" "CLI" "APPLIED" "OPS/S" "LATENCY p50/90/99/max"
    "LOOPp99" "OVERDUE" "ORDER";
  List.iter
    (fun (spec, r) ->
      match r with
      | Error msg -> Printf.printf "%-14s %s\n" spec ("DOWN: " ^ msg)
      | Ok s ->
          let window, rate_window_s =
            match Hashtbl.find_opt prev s.node with
            | Some (before, at) ->
                ( Snapshot.delta ~before ~after:s.snap,
                  (Unix.gettimeofday () -. at) *. 1.0 )
            | None -> (s.snap, s.uptime_ms /. 1000.0)
          in
          let applied = Snapshot.counter s.snap "server.applied" in
          let window_applied = Snapshot.counter window "server.applied" in
          let rate =
            if rate_window_s > 0.0 then
              float_of_int window_applied /. rate_window_s
            else 0.0
          in
          let lat =
            if Snapshot.hist_count window "server.latency_ms" > 0 then
              lat_cell window "server.latency_ms"
            else lat_cell s.snap "server.latency_ms"
          in
          Printf.printf "%-14s %6.1f %4d %4d %4d %9d %8.1f %-22s %8s %8d %-11s\n"
            spec (s.uptime_ms /. 1000.0) s.vid s.members s.clients applied rate
            lat
            (pct (Snapshot.quantile s.snap "evloop.tick_ms" 0.99))
            (Snapshot.counter s.snap "evloop.timer_overdue")
            (digest_tag order_digests s.order_digest))
    results

(* The CI liveness gate: prints one verdict line per check. *)
let check_live results =
  let ok = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        ok := false;
        Printf.printf "FAIL %s\n" m)
      fmt
  in
  let pass fmt = Printf.ksprintf (fun m -> Printf.printf "ok   %s\n" m) fmt in
  List.iter
    (fun (spec, r) ->
      match r with
      | Error msg -> fail "%s: no snapshot (%s)" spec msg
      | Ok s ->
          let delivered = Snapshot.counter s.snap "abcast.delivered" in
          if delivered > 0 then pass "%s: abcast.delivered = %d" spec delivered
          else fail "%s: abcast.delivered = 0" spec;
          let n = Snapshot.hist_count s.snap "server.latency_ms" in
          let p99 = Snapshot.quantile s.snap "server.latency_ms" 0.99 in
          if n > 0 && Float.is_finite p99 then
            pass "%s: server.latency_ms n=%d p99=%.2fms" spec n p99
          else fail "%s: server.latency_ms empty or p99 not finite" spec;
          if Snapshot.hist_count s.snap "evloop.tick_ms" > 0 then
            pass "%s: evloop.tick_ms n=%d" spec
              (Snapshot.hist_count s.snap "evloop.tick_ms")
          else fail "%s: evloop.tick_ms missing" spec)
    results;
  (let digests =
     List.filter_map
       (fun (_, r) -> match r with Ok s -> Some s.order_digest | _ -> None)
       results
   in
   match digests with
   | [] -> fail "no replica produced an order digest"
   | first :: rest ->
       if List.for_all (( = ) first) rest then
         pass "order digests identical across %d replicas"
           (List.length digests)
       else fail "order digests diverge: %s" (String.concat " " digests));
  !ok

let run servers_spec interval once assert_live =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let specs =
    List.filter
      (fun s -> s <> "")
      (List.map String.trim (String.split_on_char ',' servers_spec))
  in
  let addrs =
    List.map
      (fun spec ->
        match parse_server spec with
        | Ok addr -> (spec, addr)
        | Error msg ->
            prerr_endline msg;
            exit 2)
      specs
  in
  if addrs = [] then begin
    prerr_endline "--servers lists no servers";
    exit 2
  end;
  let prev : (int, Snapshot.t * float) Hashtbl.t = Hashtbl.create 8 in
  let rec iter () =
    let results = List.map (fun (spec, addr) -> (spec, poll addr)) addrs in
    if not once then print_string "\027[2J\027[H";
    Printf.printf "gcs_top — %d servers, every %.0f ms%s\n\n"
      (List.length addrs) interval
      (if once then " (single poll)" else "");
    render results prev;
    print_newline ();
    List.iter
      (fun (_, r) ->
        match r with
        | Ok s ->
            Hashtbl.replace prev s.node (s.snap, Unix.gettimeofday ())
        | Error _ -> ())
      results;
    if once then begin
      if assert_live then if check_live results then exit 0 else exit 1
    end
    else begin
      (try flush stdout with Sys_error _ -> ());
      Unix.sleepf (interval /. 1000.0);
      iter ()
    end
  in
  iter ()

let servers_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "servers" ] ~docv:"SPEC"
        ~doc:
          "Comma-separated client endpoints to watch; each is PORT \
           (loopback) or HOST:PORT.")

let interval_t =
  Arg.(
    value
    & opt float 1000.0
    & info [ "interval" ] ~docv:"MS" ~doc:"Poll period, ms.")

let once_t =
  Arg.(
    value & flag
    & info [ "once" ] ~doc:"Poll once, print the table, and exit.")

let assert_live_t =
  Arg.(
    value & flag
    & info [ "assert-live" ]
        ~doc:
          "With $(b,--once): exit non-zero unless every replica answers \
           with delivered abcast traffic, a populated latency histogram \
           (finite p99), event-loop profiling, and matching order \
           digests.")

let cmd =
  Cmd.v
    (Cmd.info "gcs_top" ~doc:"Polling dashboard over gcs_server Stats endpoints")
    Term.(const run $ servers_t $ interval_t $ once_t $ assert_live_t)

let () = exit (Cmd.eval cmd)
