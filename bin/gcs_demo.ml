(* gcs_demo — command-line scenario runner for the group communication
   stacks.

   Usage examples:
     dune exec bin/gcs_demo.exe -- run --nodes 5 --casts 20 --crash 0
     dune exec bin/gcs_demo.exe -- run --arch traditional --nodes 4 --trace
     dune exec bin/gcs_demo.exe -- bank --requests 50 --commuting 80
     dune exec bin/gcs_demo.exe -- trace --nodes 3 --casts 3 *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module View = Gc_membership.View
module Stack = Gcs.Gcs_stack
module Tr = Gc_traditional.Traditional_stack
module Tt = Gc_totem.Totem_stack
module Stats = Gc_sim.Stats
module Metrics = Gc_obs.Metrics
module Process = Gc_kernel.Process
module Sm = Gc_replication.State_machine
module Active_gb = Gc_replication.Active_gb
module Client = Gc_replication.Client

type Gc_net.Payload.t += Demo of { k : int; sent_at : float }

let () =
  Gc_net.Payload.register_printer (function
    | Demo { k; _ } -> Some (Printf.sprintf "demo[%d]" k)
    | _ -> None)

let save_record trace = function
  | None -> ()
  | Some path ->
      Trace.save_jsonl trace path;
      Printf.printf "recorded %d events to %s\n"
        (List.length (Trace.records trace))
        path;
      if Trace.dropped trace > 0 then
        Printf.printf
          "warning: ring buffer evicted %d events; same-view audit may be \
           unreliable\n"
          (Trace.dropped trace)

(* ---------- run: a broadcast workload on either stack ---------- *)

let run_cmd arch nodes casts period crash_node seed show_trace show_metrics
    record =
  let engine = Engine.create ~seed () in
  let trace = Trace.create ~enabled:(show_trace || record <> None) () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n:nodes () in
  let initial = List.init nodes (fun i -> i) in
  let lat = Stats.sample () in
  let views = ref [] in
  let send, crash, final_view, all_metrics =
    match arch with
    | `New ->
        let stacks =
          Array.init nodes (fun id -> Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ())
        in
        Array.iter
          (fun s ->
            Stack.on_deliver s (fun ~origin:_ ~ordered:_ p ->
                match p with
                | Demo { sent_at; _ } when Stack.id s = 1 ->
                    Stats.add lat (Engine.now engine -. sent_at)
                | _ -> ());
            Stack.on_view s (fun v ->
                if Stack.id s = 1 then
                  views := Format.asprintf "%a" View.pp v :: !views))
          stacks;
        ( (fun i k ->
            Stack.abcast stacks.(i) (Demo { k; sent_at = Engine.now engine })),
          (fun i -> Stack.crash stacks.(i)),
          (fun () -> Format.asprintf "%a" View.pp (Stack.view stacks.(1))),
          fun () -> Array.to_list stacks |> List.map Stack.metrics )
    | `Traditional ->
        let stacks =
          Array.init nodes (fun id -> Tr.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ())
        in
        Array.iter
          (fun s ->
            Tr.on_deliver s (fun ~origin:_ ~ordered:_ p ->
                match p with
                | Demo { sent_at; _ } when Tr.id s = 1 ->
                    Stats.add lat (Engine.now engine -. sent_at)
                | _ -> ());
            Tr.on_view s (fun v ->
                if Tr.id s = 1 then
                  views := Format.asprintf "%a" View.pp v :: !views))
          stacks;
        ( (fun i k -> Tr.abcast stacks.(i) (Demo { k; sent_at = Engine.now engine })),
          (fun i -> Tr.crash stacks.(i)),
          (fun () -> Format.asprintf "%a" View.pp (Tr.view stacks.(1))),
          fun () ->
            Array.to_list stacks
            |> List.map (fun s -> Process.metrics (Tr.process s)) )
    | `Totem ->
        let stacks =
          Array.init nodes (fun id -> Tt.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ())
        in
        Array.iter
          (fun s ->
            Tt.on_deliver s (fun ~origin:_ p ->
                match p with
                | Demo { sent_at; _ } when Tt.id s = 1 ->
                    Stats.add lat (Engine.now engine -. sent_at)
                | _ -> ());
            Tt.on_view s (fun v ->
                if Tt.id s = 1 then
                  views := Format.asprintf "%a" View.pp v :: !views))
          stacks;
        ( (fun i k -> Tt.abcast stacks.(i) (Demo { k; sent_at = Engine.now engine })),
          (fun i -> Tt.crash stacks.(i)),
          (fun () -> Format.asprintf "%a" View.pp (Tt.view stacks.(1))),
          fun () ->
            Array.to_list stacks
            |> List.map (fun s -> Process.metrics (Tt.process s)) )
  in
  for k = 0 to casts - 1 do
    let sender = k mod nodes in
    ignore
      (Engine.schedule engine
         ~delay:(100.0 +. (float_of_int k *. period))
         (fun () -> send sender k))
  done;
  (match crash_node with
  | Some i ->
      ignore
        (Engine.schedule engine
           ~delay:(100.0 +. (float_of_int casts *. period /. 2.0))
           (fun () ->
             Printf.printf "[crash] node %d\n" i;
             crash i))
  | None -> ());
  Engine.run ~until:60_000.0 engine;
  if show_trace then
    List.iter
      (fun r -> Format.printf "%a@." Trace.pp_record r)
      (Trace.records trace);
  Printf.printf "arch: %s   nodes: %d   casts: %d   seed: %Ld\n"
    (match arch with
    | `New -> "new (AB-GB)"
    | `Traditional -> "traditional (GM-VS)"
    | `Totem -> "totem (token ring)")
    nodes casts seed;
  Printf.printf "delivered at node 1: %d   mean latency: %s ms   p95: %s ms\n"
    (Stats.count lat)
    (Stats.fmt_ms (Stats.mean lat))
    (Stats.fmt_ms (Stats.percentile lat 95.0));
  Printf.printf "views at node 1: %s\n"
    (String.concat " -> " (List.rev !views));
  Printf.printf "final view: %s\n" (final_view ());
  Printf.printf "network messages: %d\n" (Netsim.messages_sent net);
  if show_metrics then begin
    Printf.printf "\nmerged layer metrics (all nodes):\n";
    Format.printf "%a@." Metrics.pp (Metrics.merged (all_metrics ()))
  end;
  save_record trace record

(* ---------- bank: the Section 4.2 workload ---------- *)

let bank_cmd requests commuting seed record =
  let n_replicas = 3 in
  let engine = Engine.create ~seed () in
  let trace = Trace.create ~enabled:(record <> None) () in
  let net =
    Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n:(n_replicas + 1) ()
  in
  let replicas = List.init n_replicas (fun i -> i) in
  let servers =
    List.map
      (fun id ->
        Active_gb.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas
          ~classify:Sm.Bank.classify ~make_sm:Sm.Bank.make ())
      replicas
  in
  let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:n_replicas ~replicas () in
  let rng = Engine.split_rng engine in
  let lat = Stats.sample () in
  for k = 0 to requests - 1 do
    let cmd =
      if Gc_sim.Rng.int rng 100 < commuting then
        Sm.Bank.Deposit { account = Gc_sim.Rng.int rng 4; amount = 10 }
      else Sm.Bank.Withdraw { account = Gc_sim.Rng.int rng 4; amount = 5 }
    in
    ignore
      (Engine.schedule engine ~delay:(float_of_int (k * 25)) (fun () ->
           Client.request client ~cmd ~on_reply:(fun _ ~latency ->
               Stats.add lat latency)))
  done;
  Engine.run ~until:120_000.0 engine;
  let s0 = List.hd servers in
  Printf.printf "bank over generic broadcast: %d replicas, %d requests, %d%% commuting\n"
    n_replicas requests commuting;
  Printf.printf "served: %d   mean latency: %s ms   p95: %s ms\n"
    (Stats.count lat)
    (Stats.fmt_ms (Stats.mean lat))
    (Stats.fmt_ms (Stats.percentile lat 95.0));
  Printf.printf "consensus instances: %d   fast-path deliveries: %d\n"
    (Gc_abcast.Atomic_broadcast.next_instance
       (Stack.atomic_broadcast (Active_gb.stack s0)))
    (Gc_gbcast.Generic_broadcast.fast_delivered_count
       (Stack.generic_broadcast (Active_gb.stack s0)));
  (match Active_gb.snapshot s0 with
  | Sm.Bank.Bank_state accounts ->
      Printf.printf "final balances: %s\n"
        (String.concat ", "
           (List.map (fun (a, b) -> Printf.sprintf "acct%d=%d" a b) accounts))
  | _ -> ());
  save_record trace record

(* ---------- cmdliner plumbing ---------- *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let record_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"FILE"
        ~doc:
          "Record the full causal event trace to $(docv) as JSON-lines \
           (audit or export it with $(b,gcs_trace)).")

let nodes_arg =
  Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"N" ~doc:"Group size.")

let arch_arg =
  let archs =
    [ ("new", `New); ("traditional", `Traditional); ("totem", `Totem) ]
  in
  Arg.(
    value
    & opt (enum archs) `New
    & info [ "arch" ] ~docv:"ARCH" ~doc:"Stack: $(b,new) (AB-GB), $(b,traditional) (GM-VS) or $(b,totem) (token ring).")

let run_term =
  let casts =
    Arg.(value & opt int 10 & info [ "casts" ] ~docv:"K" ~doc:"Broadcast count.")
  and period =
    Arg.(value & opt float 50.0 & info [ "period" ] ~docv:"MS" ~doc:"Send period (virtual ms).")
  and crash =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash" ] ~docv:"ID" ~doc:"Crash this node mid-run.")
  and show_trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Dump the full event trace.")
  and show_metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the merged per-layer metrics registry after the run.")
  in
  Term.(const run_cmd $ arch_arg $ nodes_arg $ casts $ period $ crash $ seed_arg
        $ show_trace $ show_metrics $ record_arg)

let bank_term =
  let requests =
    Arg.(value & opt int 40 & info [ "requests" ] ~docv:"K" ~doc:"Request count.")
  and commuting =
    Arg.(
      value & opt int 80
      & info [ "commuting" ] ~docv:"PCT" ~doc:"Percentage of deposits (commutative).")
  in
  Term.(const bank_cmd $ requests $ commuting $ seed_arg $ record_arg)

let cmds =
  [
    Cmd.v
      (Cmd.info "run" ~doc:"Run a broadcast workload on either architecture")
      run_term;
    Cmd.v
      (Cmd.info "bank"
         ~doc:"Run the Section 4.2 replicated bank over generic broadcast")
      bank_term;
  ]

let () =
  let doc = "group communication scenarios (Mena/Schiper/Wojciechowski 2003)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "gcs_demo" ~doc) cmds))
