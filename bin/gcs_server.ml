(* gcs_server — a group communication daemon over real TCP.

     dune exec bin/gcs_server.exe -- --id 0 --peers 7001,7002,7003 \
       --client-port 8001

   Each entry of --peers is "port" (loopback) or "host:port", listed in
   node-id order; the daemon binds the entry at index --id for its peer
   mesh and --client-port for client connections.  All listed nodes form
   the founding view unless --join-via is given, in which case the daemon
   boots outside the group and asks that sponsor to add it. *)

module Evloop = Gc_runtime_unix.Evloop
module Server = Gc_server.Server
module Stack = Gcs.Gcs_stack
open Cmdliner

let log_line fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "[%.3f] %s\n%!" (Unix.gettimeofday ()) msg)
    fmt

let parse_peer entry =
  match String.rindex_opt entry ':' with
  | None -> (
      match int_of_string_opt entry with
      | Some port -> Ok (Unix.inet_addr_loopback, port)
      | None -> Error (Printf.sprintf "bad peer entry %S" entry))
  | Some i -> (
      let host = String.sub entry 0 i in
      let port = String.sub entry (i + 1) (String.length entry - i - 1) in
      match
        (Unix.inet_addr_of_string host, int_of_string_opt port)
      with
      | addr, Some port -> Ok (addr, port)
      | exception Failure _ ->
          Error (Printf.sprintf "bad peer host in %S" entry)
      | _, None -> Error (Printf.sprintf "bad peer port in %S" entry))

let parse_peers spec =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
        match parse_peer (String.trim e) with
        | Ok p -> go (p :: acc) rest
        | Error _ as err -> err)
  in
  go [] (String.split_on_char ',' spec)

let run id peers_spec client_port join_via hb_period telemetry_interval
    telemetry_file data_dir sync_replies =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match parse_peers peers_spec with
  | Error msg ->
      prerr_endline msg;
      exit 2
  | Ok peers ->
      let n = List.length peers in
      if id < 0 || id >= n then begin
        Printf.eprintf "--id %d out of range for %d peers\n" id n;
        exit 2
      end;
      let metrics = Gc_obs.Metrics.create () in
      let loop = Evloop.create ~metrics () in
      let my_addr, my_port = List.nth peers id in
      let initial =
        match join_via with
        | Some _ -> List.filteri (fun i _ -> i <> id) (List.init n Fun.id)
        | None -> List.init n Fun.id
      in
      let config =
        Stack.Config.make ~runtime:Stack.Config.Unix ?hb_period ()
      in
      let storage =
        Option.map
          (fun dir ->
            log_line "node %d: durable log in %s" id dir;
            Gc_runtime_unix.Fstore.open_dir ~metrics ~dir ())
          data_dir
      in
      let server =
        Server.create ~loop ~id ~initial ~config ~metrics
          ~log:(fun msg -> log_line "node %d: %s" id msg)
          ?join_via ?storage ~sync_replies
          ~peer_listen:(Unix.ADDR_INET (my_addr, my_port))
          ~client_listen:(Unix.ADDR_INET (Unix.inet_addr_loopback, client_port))
          ()
      in
      Server.set_peers server
        (List.mapi (fun i (addr, port) -> (i, Unix.ADDR_INET (addr, port))) peers);
      let telemetry =
        match telemetry_interval with
        | Some interval_ms when interval_ms > 0.0 ->
            let path =
              match telemetry_file with
              | Some p -> p
              | None -> Printf.sprintf "gcs-telemetry-%d.jsonl" id
            in
            let t = Gc_server.Telemetry.start ~loop ~server ~interval_ms ~path in
            log_line "node %d: telemetry every %.0f ms -> %s" id interval_ms path;
            Some t
        | _ -> None
      in
      (* SIGTERM/SIGINT: an orderly exit instead of dropping whatever the
         batchers and the log buffer still hold.  Signal handlers only set
         a flag — the teardown itself runs on the event loop thread, after
         select returns. *)
      let stopping = ref false in
      let request_stop signame =
        if not !stopping then begin
          stopping := true;
          log_line "node %d: %s, shutting down" id signame;
          Evloop.stop loop
        end
      in
      if not Sys.win32 then begin
        Sys.set_signal Sys.sigterm
          (Sys.Signal_handle (fun _ -> request_stop "SIGTERM"));
        Sys.set_signal Sys.sigint
          (Sys.Signal_handle (fun _ -> request_stop "SIGINT"))
      end;
      (* A joiner's client listener is deferred until its resync install
         lands, so its port reads 0 here; the server logs the real port
         when it opens. *)
      log_line "node %d: peer mesh on %d, clients on %s%s" id my_port
        (match Server.client_port server with
        | 0 -> "(deferred until joined)"
        | p -> string_of_int p)
        (match join_via with
        | Some via -> Printf.sprintf ", joining via %d" via
        | None -> " (founding member)");
      Evloop.run loop;
      (* Orderly teardown: final telemetry flush, then Server.shutdown
         (flush batchers, sync + snapshot the durable log, close peers). *)
      Option.iter Gc_server.Telemetry.stop telemetry;
      Server.shutdown server;
      log_line "node %d: stopped" id

let id_t =
  Arg.(required & opt (some int) None & info [ "id" ] ~docv:"ID" ~doc:"Node id (index into $(b,--peers)).")

let peers_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "peers" ] ~docv:"SPEC"
        ~doc:"Comma-separated peer endpoints in id order; each is PORT (loopback) or HOST:PORT.")

let client_port_t =
  Arg.(
    required
    & opt (some int) None
    & info [ "client-port" ] ~docv:"PORT" ~doc:"Loopback port for client connections.")

let join_via_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "join-via" ] ~docv:"ID"
        ~doc:"Boot outside the group and join through this sponsor node.")

let hb_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "hb-period" ] ~docv:"MS" ~doc:"Heartbeat period override, ms.")

let telemetry_interval_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "telemetry-interval" ] ~docv:"MS"
        ~doc:
          "Append a full stats snapshot to the telemetry JSONL file every \
           $(docv) milliseconds.")

let telemetry_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-file" ] ~docv:"PATH"
        ~doc:
          "Telemetry time-series destination (default \
           gcs-telemetry-ID.jsonl in the working directory).")

let data_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Durable state directory (created as needed): the delivery log \
           and snapshot live here, and a restart with the same $(docv) \
           recovers the replica by log replay instead of losing its \
           state.")

let sync_replies_t =
  Arg.(
    value & flag
    & info [ "sync-replies" ]
        ~doc:
          "Fsync the delivery log before every client reply \
           (acked-means-durable), instead of relying on the periodic \
           group-commit sync.  Requires $(b,--data-dir).")

let cmd =
  Cmd.v
    (Cmd.info "gcs_server" ~doc:"Group communication daemon (AB-GB stack over TCP)")
    Term.(
      const run $ id_t $ peers_t $ client_port_t $ join_via_t $ hb_t
      $ telemetry_interval_t $ telemetry_file_t $ data_dir_t $ sync_replies_t)

let () = exit (Cmd.eval cmd)
