(* gcs_client — thin synchronous client for gcs_server.

     dune exec bin/gcs_client.exe -- put  --server 8001 key value
     dune exec bin/gcs_client.exe -- incr --server 8001 hits 3
     dune exec bin/gcs_client.exe -- get  --server 8001 key
     dune exec bin/gcs_client.exe -- dump --server 8001
     dune exec bin/gcs_client.exe -- load --server 8001 --ops 100 --conflicting 25

   Prints the reply body on stdout; exits non-zero on refusal/timeout. *)

module C = Gc_server.Sync_client
open Cmdliner

let parse_server spec =
  match String.rindex_opt spec ':' with
  | None -> (
      match int_of_string_opt spec with
      | Some port -> Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      | None -> Error (Printf.sprintf "bad server %S" spec))
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match (Unix.inet_addr_of_string host, int_of_string_opt port) with
      | addr, Some port -> Ok (Unix.ADDR_INET (addr, port))
      | exception Failure _ -> Error (Printf.sprintf "bad server host %S" spec)
      | _, None -> Error (Printf.sprintf "bad server port %S" spec))

let with_client spec timeout f =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match parse_server spec with
  | Error msg ->
      prerr_endline msg;
      exit 2
  | Ok addr -> (
      match C.connect addr with
      | Error msg ->
          Printf.eprintf "connect: %s\n" msg;
          exit 1
      | Ok client ->
          let outcome = f client ~timeout in
          C.close client;
          (match outcome with
          | Ok body -> print_endline body
          | Error e ->
              Printf.eprintf "error: %s\n" (C.error_to_string e);
              exit 1))

let server_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "server" ] ~docv:"HOST:PORT" ~doc:"Server client port (PORT alone means loopback).")

let timeout_t =
  Arg.(
    value
    & opt float 10_000.0
    & info [ "timeout" ] ~docv:"MS" ~doc:"Per-request timeout, ms.")

let pos n docv = Arg.(required & pos n (some string) None & info [] ~docv)

let put_cmd =
  Cmd.v (Cmd.info "put" ~doc:"Totally-ordered write (conflicting)")
    Term.(
      const (fun spec timeout key value ->
          with_client spec timeout (fun c ~timeout ->
              C.put c ~timeout ~key ~value ()))
      $ server_t $ timeout_t $ pos 0 "KEY" $ pos 1 "VALUE")

let incr_cmd =
  Cmd.v (Cmd.info "incr" ~doc:"Commuting increment (fast path)")
    Term.(
      const (fun spec timeout key delta ->
          match int_of_string_opt delta with
          | None ->
              prerr_endline "DELTA must be an integer";
              Stdlib.exit 2
          | Some delta ->
              with_client spec timeout (fun c ~timeout ->
                  C.incr c ~timeout ~key ~delta ()))
      $ server_t $ timeout_t $ pos 0 "KEY" $ pos 1 "DELTA")

let get_cmd =
  Cmd.v (Cmd.info "get" ~doc:"Read a key from the serving replica")
    Term.(
      const (fun spec timeout key ->
          with_client spec timeout (fun c ~timeout -> C.get c ~timeout ~key ()))
      $ server_t $ timeout_t $ pos 0 "KEY")

let dump_cmd =
  Cmd.v (Cmd.info "dump" ~doc:"Replica digest line (order/state digests, counters)")
    Term.(
      const (fun spec timeout ->
          with_client spec timeout (fun c ~timeout -> C.dump c ~timeout ()))
      $ server_t $ timeout_t)

let stats_cmd =
  let prom_t =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:"Prometheus text exposition instead of compact JSON.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Full telemetry snapshot of the serving replica")
    Term.(
      const (fun spec timeout prom ->
          let format =
            if prom then Gc_server.Proto.Stats_prometheus
            else Gc_server.Proto.Stats_json
          in
          with_client spec timeout (fun c ~timeout ->
              C.stats c ~timeout ~format ()))
      $ server_t $ timeout_t $ prom_t)

let health_cmd =
  Cmd.v (Cmd.info "health" ~doc:"One-line liveness summary")
    Term.(
      const (fun spec timeout ->
          with_client spec timeout (fun c ~timeout -> C.health c ~timeout ()))
      $ server_t $ timeout_t)

let load_cmd =
  let ops_t =
    Arg.(value & opt int 100 & info [ "ops" ] ~docv:"N" ~doc:"Total operations.")
  in
  let conflicting_t =
    Arg.(
      value
      & opt int 25
      & info [ "conflicting" ] ~docv:"PCT"
          ~doc:"Percentage of ops that are conflicting puts (rest are commuting increments).")
  in
  Cmd.v (Cmd.info "load" ~doc:"Closed-loop load generator against one server")
    Term.(
      const (fun spec timeout ops conflicting ->
          with_client spec timeout (fun c ~timeout ->
              let t0 = Unix.gettimeofday () in
              let rec go i =
                if i >= ops then Ok ()
                else
                  let r =
                    if i * 100 < conflicting * ops then
                      C.put c ~timeout ~key:(Printf.sprintf "reg%d" (i mod 8))
                        ~value:(string_of_int i) ()
                    else C.incr c ~timeout ~key:"hits" ~delta:1 ()
                  in
                  match r with Ok _ -> go (i + 1) | Error e -> Error e
              in
              match go 0 with
              | Error e -> Error e
              | Ok () ->
                  let dt = Unix.gettimeofday () -. t0 in
                  Ok
                    (Printf.sprintf "%d ops in %.3fs (%.0f op/s)" ops dt
                       (float_of_int ops /. dt))))
      $ server_t $ timeout_t $ ops_t $ conflicting_t)

let cmd =
  Cmd.group
    (Cmd.info "gcs_client" ~doc:"Client for gcs_server")
    [ put_cmd; incr_cmd; get_cmd; dump_cmd; stats_cmd; health_cmd; load_cmd ]

let () = exit (Cmd.eval cmd)
