(* gcs_trace — offline tooling for recorded runs.

   A simulation run recorded with [gcs_demo run --record FILE] (or any
   JSONL dump of [Gc_obs.Event] lines) can be audited against the
   protocol invariants and exported to Chrome trace_event format:

     dune exec bin/gcs_trace.exe -- audit trace.jsonl
     dune exec bin/gcs_trace.exe -- audit trace.jsonl --checks total-order,fifo
     dune exec bin/gcs_trace.exe -- export trace.jsonl -o chrome.json
     dune exec bin/gcs_trace.exe -- info trace.jsonl *)

module Event = Gc_obs.Event
module Audit = Gc_obs.Audit
module Json = Gc_obs.Json

let load path =
  try Ok (Event.load_jsonl path) with
  | Sys_error msg -> Error msg
  | Failure msg -> Error (Printf.sprintf "%s: %s" path msg)

let write_chrome events path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (Event.to_chrome events)))

(* ---------- audit ---------- *)

let parse_checks = function
  | None -> Ok Audit.all_checks
  | Some s ->
      let names = String.split_on_char ',' (String.trim s) in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | name :: rest -> (
            match Audit.check_of_string (String.trim name) with
            | Some c -> go (c :: acc) rest
            | None -> Error (Printf.sprintf "unknown check %S" name))
      in
      go [] names

let audit_cmd file checks_opt chrome =
  match load file with
  | Error msg ->
      Printf.eprintf "gcs_trace: %s\n" msg;
      2
  | Ok events -> (
      match parse_checks checks_opt with
      | Error msg ->
          Printf.eprintf "gcs_trace: %s\n" msg;
          2
      | Ok checks ->
          let report = Audit.run ~checks events in
          Format.printf "%a@?" Audit.pp_report report;
          (match chrome with
          | Some out ->
              write_chrome events out;
              Printf.printf "chrome trace written to %s\n" out
          | None -> ());
          if Audit.ok report then 0 else 1)

(* ---------- export ---------- *)

let export_cmd file out =
  match load file with
  | Error msg ->
      Printf.eprintf "gcs_trace: %s\n" msg;
      2
  | Ok events ->
      write_chrome events out;
      Printf.printf "%d events -> %s (open in chrome://tracing)\n"
        (List.length events) out;
      0

(* ---------- info ---------- *)

let info_cmd file =
  match load file with
  | Error msg ->
      Printf.eprintf "gcs_trace: %s\n" msg;
      2
  | Ok events ->
      let tally = Hashtbl.create 32 and nodes = Hashtbl.create 16 in
      let t0 = ref infinity and t1 = ref neg_infinity in
      List.iter
        (fun (e : Event.t) ->
          let key = (e.Event.component, Event.kind_to_string e.Event.kind) in
          Hashtbl.replace tally key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally key));
          Hashtbl.replace nodes e.Event.node ();
          if e.Event.time < !t0 then t0 := e.Event.time;
          if e.Event.time > !t1 then t1 := e.Event.time)
        events;
      Printf.printf "%s: %d events, %d nodes, %.1f..%.1f ms\n" file
        (List.length events) (Hashtbl.length nodes) !t0 !t1;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
      |> List.sort compare
      |> List.iter (fun ((c, k), n) -> Printf.printf "  %-14s %-14s %d\n" c k n);
      0

(* ---------- cmdliner plumbing ---------- *)

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TRACE" ~doc:"JSONL trace file recorded with --record.")

let audit_term =
  let checks =
    Arg.(
      value
      & opt (some string) None
      & info [ "checks" ] ~docv:"LIST"
          ~doc:
            "Comma-separated checks to run: $(b,fifo), $(b,total-order), \
             $(b,conflict-order), $(b,same-view), $(b,agreement).  Default: \
             all.")
  and chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"Also export the trace in Chrome trace_event format.")
  in
  Term.(const audit_cmd $ file_arg $ checks $ chrome)

let export_term =
  let out =
    Arg.(
      value & opt string "chrome_trace.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Term.(const export_cmd $ file_arg $ out)

let info_term = Term.(const info_cmd $ file_arg)

let cmds =
  [
    Cmd.v
      (Cmd.info "audit"
         ~doc:
           "Replay a recorded trace through the protocol auditor (exit 1 on \
            violation)")
      audit_term;
    Cmd.v
      (Cmd.info "export" ~doc:"Convert a trace to Chrome trace_event format")
      export_term;
    Cmd.v (Cmd.info "info" ~doc:"Summarise a recorded trace") info_term;
  ]

let () =
  let doc = "audit and explore recorded group-communication runs" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "gcs_trace" ~doc) cmds))
