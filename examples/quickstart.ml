(* Quickstart: a three-process group over the new architecture.

   Run with:  dune exec examples/quickstart.exe

   Shows the basic public API of the stack (Figure 9 of the paper):
   - [abcast]: totally ordered broadcast,
   - [rbcast]: commuting broadcast (fast path, no consensus),
   - views delivered as ordinary totally-ordered events,
   - a crash leading to a monitored exclusion, with the survivors
     continuing undisturbed. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module View = Gc_membership.View
module Stack = Gcs.Gcs_stack

type Gc_net.Payload.t += Chat of string

let () =
  let n = 3 in
  let engine = Engine.create ~seed:7L () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  let initial = [ 0; 1; 2 ] in
  let config =
    Stack.Config.make ~exclusion_timeout:1500.0 ()
  in
  let stacks =
    Array.init n (fun id -> Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config ())
  in
  (* Every process prints what it delivers and each view it installs. *)
  Array.iter
    (fun s ->
      Stack.on_deliver s (fun ~origin ~ordered payload ->
          match payload with
          | Chat text ->
              Printf.printf "[%7.1f ms] node %d delivers %s \"%s\" (from %d)\n"
                (Engine.now engine) (Stack.id s)
                (if ordered then "ordered " else "commuting")
                text origin
          | _ -> ());
      Stack.on_view s (fun v ->
          Format.printf "[%7.1f ms] node %d installs view %a@."
            (Engine.now engine) (Stack.id s) View.pp v))
    stacks;

  print_endline "--- totally ordered broadcasts (abcast) ---";
  Stack.abcast stacks.(0) (Chat "hello");
  Stack.abcast stacks.(1) (Chat "world");
  Engine.run ~until:1_000.0 engine;

  print_endline "--- commuting broadcasts (rbcast: fast path, no consensus) ---";
  Stack.rbcast stacks.(2) (Chat "fast one");
  Stack.rbcast stacks.(0) (Chat "fast two");
  Engine.run ~until:2_000.0 engine;

  print_endline "--- crash node 2: suspicion, then monitored exclusion ---";
  Stack.crash stacks.(2);
  Stack.abcast stacks.(0) (Chat "after the crash");
  Engine.run ~until:10_000.0 engine;

  Printf.printf "final view at node 0: %s\n"
    (Format.asprintf "%a" View.pp (Stack.view stacks.(0)));
  Printf.printf "consensus-free deliveries at node 0: %d of %d\n"
    (Gc_gbcast.Generic_broadcast.fast_delivered_count
       (Stack.generic_broadcast stacks.(0)))
    (Gc_gbcast.Generic_broadcast.delivered_count
       (Stack.generic_broadcast stacks.(0)))
