(* A replicated key-value store with a custom conflict relation.

   Run with:  dune exec examples/kv_store.exe

   The paper's generic broadcast is parametric in the conflict relation.
   Beyond the two-class rbcast/abcast table of Section 3.3, applications can
   define finer relations: here, writes to different keys commute (fast
   path), writes to the same key — and any read of a written key — conflict
   and get ordered.  Replicas converge even though each applies commuting
   writes in its own arrival order. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module Ab = Gc_abcast.Atomic_broadcast
module Gb = Gc_gbcast.Generic_broadcast
module Fd = Gc_fd.Failure_detector
module Rc = Gc_rchannel.Reliable_channel
module Rb = Gc_rbcast.Reliable_broadcast
module Process = Gc_kernel.Process
module Sm = Gc_replication.State_machine

let n = 3

let () =
  let engine = Engine.create ~seed:13L () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  let members = List.init n (fun i -> i) in
  let stores = Array.init n (fun _ -> Sm.Kv.make ()) in
  let gbs =
    Array.init n (fun id ->
        let proc = Process.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id in
        let fd = Fd.create proc ~peers:members () in
        let rc = Rc.create proc () in
        let rb = Rb.create proc rc in
        let ab = Ab.create proc ~rc ~rb ~fd ~members () in
        let gb =
          Gb.create proc ~rc ~rb ~ab
            ~conflict:(Gc_gbcast.Conflict.of_relation Sm.Kv.conflict) ~members ()
        in
        Gb.on_deliver gb (fun ~origin:_ payload ->
            match payload with
            | Sm.Kv.Put { key; data } ->
                ignore (stores.(id).Sm.apply (Sm.Kv.Put { key; data }));
                Printf.printf "[%7.1f ms] node %d applies put %s=%s\n"
                  (Engine.now engine) id key data
            | _ -> ());
        gb)
  in
  print_endline "--- concurrent writes to DIFFERENT keys: all fast path ---";
  Gb.gbcast gbs.(0) (Sm.Kv.Put { key = "alpha"; data = "from-0" });
  Gb.gbcast gbs.(1) (Sm.Kv.Put { key = "beta"; data = "from-1" });
  Gb.gbcast gbs.(2) (Sm.Kv.Put { key = "gamma"; data = "from-2" });
  Engine.run ~until:1_000.0 engine;
  Printf.printf "stage changes so far: %d (expected 0)\n" (Gb.stage gbs.(0));

  print_endline "--- concurrent writes to the SAME key: ordered by a cut ---";
  Gb.gbcast gbs.(0) (Sm.Kv.Put { key = "shared"; data = "zero" });
  Gb.gbcast gbs.(1) (Sm.Kv.Put { key = "shared"; data = "one" });
  Engine.run ~until:2_000.0 engine;
  Printf.printf "stage changes now: %d (>= 1)\n" (Gb.stage gbs.(0));

  (* Convergence check. *)
  let snaps = Array.map (fun s -> s.Sm.snapshot ()) stores in
  let same = Array.for_all (fun s -> s = snaps.(0)) snaps in
  Printf.printf "replicas converged: %b\n" same;
  (match snaps.(0) with
  | Sm.Kv.Kv_state kvs ->
      List.iter (fun (k, v) -> Printf.printf "  %s = %s\n" k v) kvs
  | _ -> ());
  Printf.printf "fast-path deliveries at node 0: %d of %d\n"
    (Gb.fast_delivered_count gbs.(0))
    (Gb.delivered_count gbs.(0))
