(* Primary-partition behaviour under a network partition.

   Run with:  dune exec examples/partition.exe

   Five processes split 3/2.  The majority side keeps ordering messages and
   eventually excludes the minority (monitoring threshold reached on the
   majority side); the minority side cannot gather consensus majorities, so
   it blocks instead of diverging — the primary-partition model the paper
   adopts.  After the partition heals, the minority processes are no longer
   members; they rejoin through the membership API and catch up via state
   transfer. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module View = Gc_membership.View
module Stack = Gcs.Gcs_stack

type Gc_net.Payload.t += Tick of int

let () =
  let n = 5 in
  let engine = Engine.create ~seed:21L () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  let initial = [ 0; 1; 2; 3; 4 ] in
  let config =
    Stack.Config.make ~exclusion_timeout:1200.0 ()
  in
  let delivered = Array.make n 0 in
  let stacks =
    Array.init n (fun id ->
        let s = Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config () in
        Stack.on_deliver s (fun ~origin:_ ~ordered:_ _ ->
            delivered.(id) <- delivered.(id) + 1);
        s)
  in
  let tick = ref 0 in
  let broadcaster =
    (* Node 0 (majority side) keeps broadcasting throughout. *)
    Gc_kernel.Process.every (Stack.process stacks.(0)) ~period:200.0 (fun () ->
        incr tick;
        Stack.abcast stacks.(0) (Tick !tick))
  in
  Engine.run ~until:1_000.0 engine;
  Printf.printf "before partition: node0 delivered %d, node4 delivered %d\n"
    delivered.(0) delivered.(4);

  print_endline "--- partition {0,1,2} | {3,4} ---";
  Netsim.partition net [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  Engine.run ~until:6_000.0 engine;
  Printf.printf "majority view: %s (keeps making progress: %d delivered)\n"
    (Format.asprintf "%a" View.pp (Stack.view stacks.(0)))
    delivered.(0);
  Printf.printf "minority node4: view %s, delivered %d (blocked, not diverged)\n"
    (Format.asprintf "%a" View.pp (Stack.view stacks.(4)))
    delivered.(4);

  print_endline "--- heal; minority rejoins through the membership API ---";
  Netsim.heal net;
  Gc_kernel.Process.cancel_periodic broadcaster;
  (* The majority excluded 3 and 4 — and, per the paper's Section 3.3.2, its
     obligation to deliver to them lapsed, so they cannot even learn of the
     exclusion passively.  Recovery is an application decision: after the
     heal they force a rejoin through a sponsor. *)
  ignore
    (Engine.schedule engine ~delay:500.0 (fun () ->
         Stack.join ~force:true stacks.(3) ~via:0;
         Stack.join ~force:true stacks.(4) ~via:1));
  Engine.run ~until:20_000.0 engine;
  Printf.printf "final view at node 0: %s\n"
    (Format.asprintf "%a" View.pp (Stack.view stacks.(0)));
  Printf.printf "node 3 member again: %b, node 4 member again: %b\n"
    (Stack.joined stacks.(3) && not (Stack.left stacks.(3)))
    (Stack.joined stacks.(4) && not (Stack.left stacks.(4)))
