(* Figure 8 of the paper, replayed: passive replication where an update and
   a primary-change race through generic broadcast.

   Run with:  dune exec examples/primary_backup.exe

   The conflict relation (updates commute; primary-change conflicts with
   everything) admits exactly two global outcomes:
     1. the update is delivered before the change -> it counts;
     2. the change wins -> the old primary's processing is void and the
        client retries against the new primary.
   Either way every replica agrees and the client's deposit is applied
   exactly once. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module Sm = Gc_replication.State_machine
module Passive = Gc_replication.Passive
module Client = Gc_replication.Client

let scenario seed =
  let engine = Engine.create ~seed () in
  let trace = Trace.create ~enabled:true () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n:4 () in
  let replicas = [ 0; 1; 2 ] in
  let servers =
    List.map
      (fun id ->
        Passive.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas
          ~primary_suspect_timeout:120.0 ~make_sm:Sm.Bank.make ())
      replicas
  in
  let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:3 ~replicas ~timeout:300.0 () in
  let done_at = ref nan in
  (* The spike that provokes the suspicion starts at t=500; the request's
     offset relative to it varies with the seed, so across seeds the update
     sometimes beats the primary-change and sometimes loses to it. *)
  let request_at = 440.0 +. (Int64.to_float seed *. 25.0) in
  ignore
    (Engine.schedule engine ~delay:500.0 (fun () ->
         Netsim.delay_spike net ~nodes:[ 0 ] ~until:900.0 ~extra:300.0));
  ignore
    (Engine.schedule engine ~delay:request_at (fun () ->
         Client.request client
           ~cmd:(Sm.Bank.Deposit { account = 0; amount = 100 })
           ~on_reply:(fun _ ~latency -> done_at := latency)));
  Engine.run ~until:60_000.0 engine;
  let s1 = List.nth servers 1 in
  let outcome =
    if Passive.updates_discarded s1 > 0 then "change first (update discarded, client retried)"
    else "update first (update counted)"
  in
  Printf.printf
    "seed %-4Ld  outcome: %-48s  client latency %7.1f ms  epoch %d  primary %s\n"
    seed outcome !done_at (Passive.epoch s1)
    (match Passive.primary s1 with Some p -> Printf.sprintf "s%d" (p + 1) | None -> "-");
  (* Every replica converged on the same state with the deposit applied
     exactly once. *)
  List.iter
    (fun s ->
      match Passive.snapshot s with
      | Sm.Bank.Bank_state [ (0, 100) ] -> ()
      | _ -> failwith "replicas diverged or deposit lost/duplicated!")
    servers

let () =
  print_endline
    "Passive replication under a racing primary-change (paper, Figure 8)";
  print_endline "";
  List.iter (fun s -> scenario (Int64.of_int s)) [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  print_endline "";
  print_endline
    "Both outcomes are legal; what matters is that all replicas pick the\n\
     same one, the suspected primary is rotated but never excluded, and the\n\
     deposit lands exactly once."
