(* The replicated bank of the paper's Section 4.2.

   Run with:  dune exec examples/bank.exe

   Every replica executes every command (state-machine replication), but the
   broadcast primitive is chosen per command class:

   - with GENERIC broadcast, deposits (commutative) ride the consensus-free
     fast path and only withdrawals pay for total order;
   - with ATOMIC broadcast, every operation pays for consensus — the
     "non-necessary overhead" the paper points out.

   Both runs use the same seed, network and workload. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module Sm = Gc_replication.State_machine
module Active = Gc_replication.Active
module Active_gb = Gc_replication.Active_gb
module Client = Gc_replication.Client
module Stats = Gc_sim.Stats

let n_replicas = 3
let n_clients = 2
let n_requests = 40

let workload rng k =
  (* 80% deposits, 20% withdrawals, across 4 accounts. *)
  let account = Gc_sim.Rng.int rng 4 in
  if k mod 5 = 4 then Sm.Bank.Withdraw { account; amount = 30 }
  else Sm.Bank.Deposit { account; amount = 10 }

let run_scheme name ~use_generic =
  let engine = Engine.create ~seed:11L () in
  let trace = Trace.create () in
  let net =
    Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n:(n_replicas + n_clients)
      ()
  in
  let replicas = List.init n_replicas (fun i -> i) in
  let latencies = Stats.sample () in
  let stacks =
    if use_generic then
      List.map
        (fun id ->
          Active_gb.stack
            (Active_gb.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas
               ~classify:Sm.Bank.classify ~make_sm:Sm.Bank.make ()))
        replicas
    else
      List.map
        (fun id ->
          Active.stack
            (Active.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas ~make_sm:Sm.Bank.make
               ()))
        replicas
  in
  let clients =
    List.init n_clients (fun i ->
        Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:(n_replicas + i) ~replicas ())
  in
  let rng = Engine.split_rng engine in
  Netsim.reset_counters net;
  for k = 0 to n_requests - 1 do
    let cmd = workload rng k in
    let client = List.nth clients (k mod n_clients) in
    ignore
      (Engine.schedule engine ~delay:(float_of_int (k * 25)) (fun () ->
           Client.request client ~cmd ~on_reply:(fun _ ~latency ->
               Stats.add latencies latency)))
  done;
  let horizon = (float_of_int n_requests *. 25.0) +. 2_000.0 in
  Engine.run ~until:horizon engine;
  let consensus_instances =
    Gc_abcast.Atomic_broadcast.next_instance
      (Gcs.Gcs_stack.atomic_broadcast (List.hd stacks))
  in
  let fast =
    Gc_gbcast.Generic_broadcast.fast_delivered_count
      (Gcs.Gcs_stack.generic_broadcast (List.hd stacks))
  in
  Printf.printf
    "%-26s  served %3d/%d  mean %6s ms  p95 %6s ms  consensus instances %3d  fast-path %3d  msgs %d\n"
    name (Stats.count latencies) n_requests
    (Stats.fmt_ms (Stats.mean latencies))
    (Stats.fmt_ms (Stats.percentile latencies 95.0))
    consensus_instances fast
    (Netsim.messages_sent net)

let () =
  print_endline
    "Replicated bank (Section 4.2): 80% deposits / 20% withdrawals, 3 replicas";
  print_endline "";
  run_scheme "generic broadcast" ~use_generic:true;
  run_scheme "atomic broadcast" ~use_generic:false;
  print_endline "";
  print_endline
    "Generic broadcast pays consensus only around withdrawals; atomic\n\
     broadcast pays for every operation."
