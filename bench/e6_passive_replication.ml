(* E6 — Figure 8 / Section 3.2.3: passive replication over generic
   broadcast.

   Part A replays the figure's race (update vs primary-change broadcast
   "approximately at the same time") across many seeds and tallies the two
   outcomes, checking convergence every time.

   Part B compares client-perceived failover after a real primary crash:
   generic-broadcast passive replication (aggressive suspicion, rotation,
   no exclusion) against the traditional view-synchrony version (large fused
   timeout, exclusion, flush). *)

open Bench_util
module Sm = Gc_replication.State_machine
module Passive = Gc_replication.Passive
module Passive_vs = Gc_replication.Passive_vs
module Client = Gc_replication.Client

let fig8_race () =
  print_endline "A. The Figure 8 race, 40 seeds";
  print_endline "";
  let update_first = ref 0 and change_first = ref 0 in
  let lat_update = Stats.sample () and lat_change = Stats.sample () in
  for seed = 1 to 40 do
    let engine, trace, net = base_net ~seed:(Int64.of_int seed) ~n:4 () in
    let replicas = [ 0; 1; 2 ] in
    let servers =
      List.map
        (fun id ->
          Passive.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas
            ~primary_suspect_timeout:120.0 ~make_sm:Sm.Bank.make ())
        replicas
    in
    let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:3 ~replicas ~timeout:300.0 () in
    let latency = ref nan in
    let request_at = 440.0 +. (float_of_int (seed mod 8) *. 25.0) in
    ignore
      (Engine.schedule engine ~delay:500.0 (fun () ->
           Netsim.delay_spike net ~nodes:[ 0 ] ~until:900.0 ~extra:300.0));
    ignore
      (Engine.schedule engine ~delay:request_at (fun () ->
           Client.request client
             ~cmd:(Sm.Bank.Deposit { account = 0; amount = 100 })
             ~on_reply:(fun _ ~latency:l -> latency := l)));
    Engine.run ~until:60_000.0 engine;
    let s1 = List.nth servers 1 in
    (* Convergence and exactly-once, every seed. *)
    List.iter
      (fun s ->
        match Passive.snapshot s with
        | Sm.Bank.Bank_state [ (0, 100) ] -> ()
        | _ -> failwith "E6: replicas diverged")
      servers;
    if Passive.updates_discarded s1 > 0 then begin
      incr change_first;
      Stats.add lat_change !latency
    end
    else begin
      incr update_first;
      Stats.add lat_update !latency
    end
  done;
  Stats.print_table
    ~header:[ "outcome"; "runs"; "client mean ms"; "client p95 ms" ]
    [
      [
        "update ordered first"; fmt_int !update_first;
        fmt_f1 (Stats.mean lat_update); fmt_f1 (Stats.percentile lat_update 95.0);
      ];
      [
        "change ordered first"; fmt_int !change_first;
        fmt_f1 (Stats.mean lat_change); fmt_f1 (Stats.percentile lat_change 95.0);
      ];
    ];
  print_endline "";
  print_endline
    "  every run converged with the deposit applied exactly once; the old\n\
    \  primary was rotated, never excluded."

let failover () =
  print_endline "";
  print_endline
    "B. Client-perceived failover after a real primary crash (5 seeds each)";
  print_endline "";
  let crash_at = 2_000.0 in
  let measure_gb seed =
    (* Four replicas with the published two-thirds quorums: the generic
       broadcast fast path tolerates f < n/3 = 1 crash, so updates keep
       flowing while the crashed primary is still a member. *)
    let engine, trace, net = base_net ~seed ~n:5 () in
    let replicas = [ 0; 1; 2; 3 ] in
    let config =
      Stack.Config.make ~runtime:Stack.Config.Sim ~gb_ack_mode:Gc_gbcast.Generic_broadcast.Two_thirds ()
    in
    let servers =
      List.map
        (fun id ->
          Passive.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas ~config
            ~primary_suspect_timeout:150.0 ~make_sm:Sm.Bank.make ())
        replicas
    in
    let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:4 ~replicas ~timeout:250.0 () in
    let latency = ref nan in
    ignore
      (Engine.schedule engine ~delay:crash_at (fun () ->
           Passive.crash (List.hd servers)));
    (* Request issued just after the crash: it rides through the failover. *)
    ignore
      (Engine.schedule engine ~delay:(crash_at +. 10.0) (fun () ->
           Client.request client
             ~cmd:(Sm.Bank.Deposit { account = 0; amount = 7 })
             ~on_reply:(fun _ ~latency:l -> latency := l)));
    Engine.run ~until:60_000.0 engine;
    audit_trace ~experiment:"e6" ~cell:(Printf.sprintf "failover-gb-%Ld" seed)
      trace;
    if seed = 601L then
      note_metrics ~experiment:"e6" ~cell:"failover-gb"
        (Metrics.merged
           (List.map (fun s -> Stack.metrics (Passive.stack s)) servers));
    !latency
  in
  let measure_vs seed =
    let engine, trace, net = base_net ~seed ~n:5 () in
    let replicas = [ 0; 1; 2; 3 ] in
    let config =
      { Tr.default_config with fd_timeout = 1_000.0; state_transfer_delay = 100.0 }
    in
    let servers =
      List.map
        (fun id ->
          Passive_vs.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas ~config
            ~make_sm:Sm.Bank.make ())
        replicas
    in
    let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:4 ~replicas ~timeout:250.0 () in
    let latency = ref nan in
    ignore
      (Engine.schedule engine ~delay:crash_at (fun () ->
           Passive_vs.crash (List.hd servers)));
    ignore
      (Engine.schedule engine ~delay:(crash_at +. 10.0) (fun () ->
           Client.request client
             ~cmd:(Sm.Bank.Deposit { account = 0; amount = 7 })
             ~on_reply:(fun _ ~latency:l -> latency := l)));
    Engine.run ~until:60_000.0 engine;
    audit_trace ~experiment:"e6" ~cell:(Printf.sprintf "failover-vs-%Ld" seed)
      trace;
    !latency
  in
  let gb = Stats.sample () and vs = Stats.sample () in
  List.iter
    (fun seed ->
      Stats.add gb (measure_gb seed);
      Stats.add vs (measure_vs seed))
    [ 601L; 602L; 603L; 604L; 605L ];
  Stats.print_table
    ~header:[ "scheme"; "failover timeout"; "client latency mean ms"; "max ms" ]
    [
      [
        "passive / generic broadcast"; "150 (safe to be small)";
        fmt_f1 (Stats.mean gb); fmt_f1 (Stats.max_value gb);
      ];
      [
        "passive / view synchrony"; "1000 (must be large)";
        fmt_f1 (Stats.mean vs); fmt_f1 (Stats.max_value vs);
      ];
    ]

let run () =
  section "E6  Passive replication (Figure 8, Section 3.2.3)"
    "the update/primary-change conflict relation yields exactly two \
     consistent outcomes; decoupled suspicion makes failover fast because \
     the suspicion timeout can be small";
  fig8_race ();
  failover ();
  conclude
    "both Figure-8 outcomes occur and always consistently; generic-broadcast \
     failover (rotation) beats exclusion-based failover by the timeout gap."
