(* E8 — Section 3.3.2: exclusion-policy ablation for the monitoring
   component.

   One real crash under background delay spikes (which produce wrong
   suspicions).  Each policy trades time-to-exclusion of the dead process
   against the risk of wrongfully excluding live ones. *)

open Bench_util
module Mon = Gc_monitoring.Monitoring

let n = 5
let crash_at = 3_000.0
let horizon = 20_000.0
let victim = n - 1

let policy_name = function
  | Mon.Immediate -> "immediate"
  | Mon.Threshold k -> Printf.sprintf "threshold %d" k
  | Mon.Output_triggered -> "output-triggered"
  | Mon.Threshold_or_output k -> Printf.sprintf "threshold %d or output" k

let run_policy ~policy ~seed =
  let config =
    Stack.Config.make ~runtime:Stack.Config.Sim ~policy ~exclusion_timeout:600.0 ~stuck_after:1_500.0 ()
  in
  let w = new_world ~config ~seed ~n () in
  (* Load keeps the reliable channels busy so output-triggered suspicion has
     something to observe. *)
  drive_load w
    ~send:(fun s p -> if Stack.alive s then Stack.abcast s p)
    ~start:500.0 ~period:50.0
    ~count:(int_of_float ((horizon -. 2_000.0) /. 50.0));
  (* Observer-local failures: single links black out for longer than the
     exclusion timeout, so exactly one member wrongly suspects a live peer
     at a time — the case corroboration is meant to filter. *)
  inject_link_flaps w ~exclude:[ victim ] ~until:horizon ~rate:0.8 ~width:900.0
    ();
  let excluded_at = ref nan in
  Stack.on_view w.stacks.(0) (fun v ->
      if Float.is_nan !excluded_at && not (View.mem v victim) then
        excluded_at := Engine.now w.engine);
  ignore
    (Engine.schedule w.engine ~delay:crash_at (fun () ->
         Stack.crash w.stacks.(victim)));
  Engine.run ~until:horizon w.engine;
  let wrongful =
    Array.to_list w.stacks
    |> List.filter Stack.alive
    |> List.fold_left
         (fun acc s ->
           acc + Mon.wrongful_exclusions_proposed (Stack.monitoring s))
         0
  in
  let detection =
    if Float.is_nan !excluded_at then nan else !excluded_at -. crash_at
  in
  let final_view = View.size (Stack.view w.stacks.(0)) in
  if seed = 801L then
    note_world_metrics ~experiment:"e8" ~cell:(policy_name policy) w;
  (detection, wrongful, final_view)

let run () =
  section "E8  Exclusion policies of the monitoring component (Section 3.3.2)"
    "the decision to exclude belongs to a separate monitoring component with \
     flexible policies: aggressive policies exclude fast but wrongly, \
     corroborated and output-triggered policies stay accurate";
  let policies =
    [
      Mon.Immediate;
      Mon.Threshold 2;
      Mon.Threshold 3;
      Mon.Output_triggered;
      Mon.Threshold_or_output 2;
    ]
  in
  let rows =
    List.map
      (fun policy ->
        let d1, w1, f1 = run_policy ~policy ~seed:801L in
        let d2, w2, f2 = run_policy ~policy ~seed:802L in
        let detection =
          match (Float.is_nan d1, Float.is_nan d2) with
          | false, false -> fmt_f1 ((d1 +. d2) /. 2.0)
          | false, true -> fmt_f1 d1
          | true, false -> fmt_f1 d2
          | true, true -> "never"
        in
        [
          policy_name policy;
          detection;
          fmt_int (w1 + w2);
          Printf.sprintf "%d/%d" f1 f2;
        ])
      policies
  in
  Stats.print_table
    ~header:
      [
        "policy"; "time to exclude crashed (ms)";
        "wrongful exclusion proposals (2 runs)"; "final view sizes";
      ]
    rows;
  conclude
    "immediate exclusion reacts fastest but wrongly excludes live members \
     under spikes; threshold policies corroborate suspicions and stay \
     accurate at a modest detection delay; output-triggered exclusion only \
     reacts when the channel is actually stuck."
