(* E7 — Failure-free characterisation of both stacks as the group grows.

   Not a paper table per se, but the background the architectural claims sit
   on: the consensus-based atomic broadcast pays more messages than a fixed
   sequencer in the failure-free case — the price of not depending on the
   membership.  Crossover appears as soon as failures or churn enter
   (E3/E4/E5). *)

open Bench_util

let count = 40
let period = 25.0

let run_cell ~kind ~n ~seed =
  match kind with
  | `Totem ->
      let w = totem_world ~seed ~n () in
      Engine.run ~until:500.0 w.engine;
      Netsim.reset_counters w.net;
      drive_load w ~send:(fun s p -> Tt.abcast s p) ~start:0.0 ~period ~count;
      Engine.run
        ~until:(500.0 +. (float_of_int count *. period) +. 1_500.0)
        w.engine;
      let lat = latencies_of w (n - 1) in
      note_world_metrics ~experiment:"e7" ~cell:(Printf.sprintf "totem-n%d" n) w;
      (Stats.mean lat, Stats.percentile lat 95.0, Netsim.messages_sent w.net)
  | `New ->
      let w = new_world ~seed ~n () in
      Engine.run ~until:500.0 w.engine;
      Netsim.reset_counters w.net;
      drive_load w
        ~send:(fun s p -> Stack.abcast s p)
        ~start:0.0 ~period ~count;
      Engine.run
        ~until:(500.0 +. (float_of_int count *. period) +. 1_500.0)
        w.engine;
      let lat = latencies_of w (n - 1) in
      note_world_metrics ~experiment:"e7" ~cell:(Printf.sprintf "new-n%d" n) w;
      (Stats.mean lat, Stats.percentile lat 95.0, Netsim.messages_sent w.net)
  | `Trad ->
      let w = trad_world ~seed ~n () in
      Engine.run ~until:500.0 w.engine;
      Netsim.reset_counters w.net;
      drive_load w ~send:(fun s p -> Tr.abcast s p) ~start:0.0 ~period ~count;
      Engine.run
        ~until:(500.0 +. (float_of_int count *. period) +. 1_500.0)
        w.engine;
      let lat = latencies_of w (n - 1) in
      note_world_metrics ~experiment:"e7" ~cell:(Printf.sprintf "trad-n%d" n) w;
      (Stats.mean lat, Stats.percentile lat 95.0, Netsim.messages_sent w.net)

let run () =
  section "E7  Failure-free scalability of both stacks"
    "(context for Sections 4.1/4.3) the new architecture trades failure-free \
     message economy for membership-independence; who wins failure-free and \
     by how much should be visible";
  let rows =
    List.map
      (fun n ->
        let nm, np, nmsg = run_cell ~kind:`New ~n ~seed:701L in
        let tm, tp, tmsg = run_cell ~kind:`Trad ~n ~seed:701L in
        let om, op, omsg = run_cell ~kind:`Totem ~n ~seed:701L in
        [
          fmt_int n;
          fmt_f1 nm;
          fmt_f1 np;
          fmt_f1 (float_of_int nmsg /. float_of_int count);
          fmt_f1 tm;
          fmt_f1 tp;
          fmt_f1 (float_of_int tmsg /. float_of_int count);
          fmt_f1 om;
          fmt_f1 op;
          fmt_f1 (float_of_int omsg /. float_of_int count);
        ])
      [ 3; 5; 7; 9; 11 ]
  in
  Stats.print_table
    ~header:
      [
        "n"; "new mean ms"; "new p95 ms"; "new msgs/cast";
        "trad mean ms"; "trad p95 ms"; "trad msgs/cast";
        "totem mean ms"; "totem p95 ms"; "totem msgs/cast";
      ]
    rows;
  conclude
    "failure-free, the sequencer-based traditional stack is leaner (as the \
     paper concedes); the new stack's consensus batches keep latency flat \
     but cost more messages — the premium it pays to stay responsive under \
     failures (E3/E4)."
