(* E3 — Section 4.3: responsiveness after a crash, as a function of the
   failure-detection timeout.

   A steady totally-ordered stream runs while the round-1 coordinator /
   sequencer crashes mid-run, under background delay jitter that makes small
   timeouts produce wrong suspicions.  For each timeout we report the post-crash
   recovery (time until the first message sent after the crash is delivered) and the number of
   wrongful exclusions.

   The paper's argument: in the new architecture the timeout can be small
   (a wrong suspicion costs a consensus round), so the recovery tracks the
   timeout down; the traditional architecture must keep the timeout large,
   because at small timeouts its wrong suspicions turn into exclusions and
   state-transfer rejoins. *)

open Bench_util

let n = 4
let crash_at = 3_000.0
let horizon = 9_000.0
let load_period = 20.0
let spike_rate = 1.0 (* per second *)
let spike_extra = 130.0
let spike_width = 250.0

let run_new ?(adaptive = false) ~timeout ~seed () =
  let config =
    Stack.Config.make ~runtime:Stack.Config.Sim ~consensus_timeout:timeout ~consensus_adaptive:adaptive
      ~exclusion_timeout:3_000.0 (* conservative, independent of [timeout] *) ()
  in
  let w = new_world ~config ~seed ~n () in
  drive_load w
    ~send:(fun s p -> if Stack.alive s then Stack.abcast s p)
    ~start:500.0 ~period:load_period
    ~count:(int_of_float ((horizon -. 1_000.0) /. load_period));
  inject_spikes w ~until:horizon ~rate:spike_rate ~extra:spike_extra
    ~width:spike_width ();
  ignore
    (Engine.schedule w.engine ~delay:crash_at (fun () ->
         Stack.crash w.stacks.(0)));
  Engine.run ~until:horizon w.engine;
  let recovery = recovery_after w 1 ~crash_at in
  let wrongful =
    Array.to_list w.stacks
    |> List.filter Stack.alive
    |> List.fold_left
         (fun acc s ->
           acc
           + Gc_monitoring.Monitoring.wrongful_exclusions_proposed
               (Stack.monitoring s))
         0
  in
  if seed = 301L then
    note_world_metrics ~experiment:"e3"
      ~cell:
        (Printf.sprintf "new%s-timeout%.0f"
           (if adaptive then "-adaptive" else "")
           timeout)
      w;
  (recovery, wrongful, delivered_count w 1)

let run_trad ~timeout ~seed =
  let config =
    { Tr.default_config with fd_timeout = timeout; state_transfer_delay = 100.0 }
  in
  let w = trad_world ~config ~seed ~n () in
  drive_load w
    ~send:(fun s p -> if Tr.alive s then Tr.abcast s p)
    ~start:500.0 ~period:load_period
    ~count:(int_of_float ((horizon -. 1_000.0) /. load_period));
  inject_spikes w ~until:horizon ~rate:spike_rate ~extra:spike_extra
    ~width:spike_width ();
  ignore
    (Engine.schedule w.engine ~delay:crash_at (fun () -> Tr.crash w.stacks.(0)));
  Engine.run ~until:horizon w.engine;
  let recovery = recovery_after w 1 ~crash_at in
  let wrongful =
    Array.to_list w.stacks
    |> List.filter Tr.alive
    |> List.fold_left (fun acc s -> acc + Tr.exclusions_suffered s) 0
  in
  if seed = 301L then
    note_world_metrics ~experiment:"e3"
      ~cell:(Printf.sprintf "trad-timeout%.0f" timeout)
      w;
  (recovery, wrongful, delivered_count w 1)

let avg3 f =
  let runs = List.map f [ 301L; 302L; 303L ] in
  let recovery =
    List.fold_left (fun a (b, _, _) -> a +. b) 0.0 runs /. 3.0
  in
  let wrongful = List.fold_left (fun a (_, x, _) -> a + x) 0 runs in
  let delivered =
    List.fold_left (fun a (_, _, d) -> a + d) 0 runs / 3
  in
  (recovery, wrongful, delivered)

let run () =
  section
    "E3  Post-crash responsiveness vs detection timeout (Section 4.3)"
    "decoupling suspicion from exclusion lets the new architecture run small \
     timeouts: blackout shrinks with the timeout while wrong suspicions stay \
     harmless; the traditional stack pays exclusions + rejoins at small \
     timeouts";
  let rows =
    List.map
      (fun timeout ->
        let nb, nw, nd = avg3 (fun seed -> run_new ~timeout ~seed ()) in
        let tb, tw, td = avg3 (fun seed -> run_trad ~timeout ~seed) in
        [
          Printf.sprintf "%.0f" timeout;
          fmt_f1 nb;
          fmt_int nw;
          fmt_int nd;
          fmt_f1 tb;
          fmt_int tw;
          fmt_int td;
        ])
      [ 50.0; 100.0; 200.0; 400.0; 800.0; 1600.0; 3200.0 ]
  in
  Stats.print_table
    ~header:
      [
        "timeout ms"; "new recovery ms"; "new wrongful excl";
        "new delivered"; "trad recovery ms"; "trad wrongful excl";
        "trad delivered";
      ]
    rows;
  (* Ablation: the adaptive consensus monitor self-tunes — no timeout knob
     at all. *)
  let ab, aw, ad =
    avg3 (fun seed -> run_new ~adaptive:true ~timeout:0.0 ~seed ())
  in
  Printf.printf
    "\n  ablation — new arch with ADAPTIVE consensus monitor (no timeout to \
     tune):\n  recovery %s ms, wrongful exclusions %d, delivered %d\n"
    (fmt_f1 ab) aw ad;
  conclude
    "the new architecture's recovery tracks the timeout down to tens of ms \
     with zero wrongful exclusions; the traditional stack suffers wrongful \
     exclusions at small timeouts (churn, state transfers) and so needs a \
     large timeout, i.e. slow recovery after real crashes."
