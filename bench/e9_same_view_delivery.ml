(* E9 — Ablation of design decision D3 (DESIGN.md) / Section 4.4: what is
   lost if view changes bypass generic broadcast?

   In the paper's design, view changes ride generic broadcast as ordered
   messages, so every message is delivered in the same view everywhere
   ("same view delivery") with no blocking.  The ablation routes view
   changes through plain atomic broadcast: still a unique sequence of views,
   but commuting (fast path) messages are no longer ordered against them, so
   the same message can be delivered in view v at one process and view v+1
   at another.  We count those violations under churn. *)

open Bench_util

let n = 4
let horizon = 15_000.0
let load_period = 8.0
let churner = n - 1

let run_variant ~same_view_delivery ~seed =
  let config =
    Stack.Config.make ~runtime:Stack.Config.Sim ~same_view_delivery ~state_transfer_delay:10.0 ()
  in
  let engine, trace, net = base_net ~seed ~n () in
  let initial = List.init n (fun i -> i) in
  (* Tag every delivery with the view it was delivered in. *)
  let tags : (int, int) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 512) in
  let stacks =
    Array.init n (fun id ->
        let s = Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config () in
        Stack.on_deliver s (fun ~origin:_ ~ordered:_ payload ->
            match payload with
            | Load { k; _ } ->
                Hashtbl.replace tags.(id) k (Stack.view s).View.vid
            | _ -> ());
        s)
  in
  (* Commuting traffic (the fast path) under leave/rejoin churn. *)
  let count = int_of_float ((horizon -. 2_000.0) /. load_period) in
  for k = 0 to count - 1 do
    let at = 500.0 +. (float_of_int k *. load_period) in
    let sender = k mod (n - 1) (* stable members only *) in
    ignore
      (Engine.schedule engine ~delay:at (fun () ->
           Stack.rbcast stacks.(sender)
             (Load { k; sent_at = Engine.now engine })))
  done;
  let rec cycle at =
    if at +. 1_500.0 < horizon -. 2_000.0 then begin
      ignore
        (Engine.schedule engine ~delay:at (fun () ->
             Stack.remove stacks.(churner) churner));
      ignore
        (Engine.schedule engine ~delay:(at +. 750.0) (fun () ->
             Stack.join ~force:true stacks.(churner) ~via:0));
      cycle (at +. 1_500.0)
    end
  in
  cycle 1_000.0;
  Engine.run ~until:horizon engine;
  (* A violation: some message delivered in different views by two of the
     stable members. *)
  let violations = ref 0 and compared = ref 0 in
  Hashtbl.iter
    (fun k vid0 ->
      for i = 1 to n - 2 do
        match Hashtbl.find_opt tags.(i) k with
        | Some vidi ->
            incr compared;
            if vidi <> vid0 then incr violations
        | None -> ()
      done)
    tags.(0);
  (* The via-ab cells violate same-view delivery by design (that is what the
     ablation demonstrates), so only the other invariants are audited there;
     via-gb cells must pass all checks including same-view. *)
  let checks =
    if same_view_delivery then Audit.all_checks
    else List.filter (fun c -> c <> Audit.Same_view) Audit.all_checks
  in
  audit_trace ~checks ~experiment:"e9"
    ~cell:
      (Printf.sprintf "%s-%Ld"
         (if same_view_delivery then "via-gb" else "via-ab")
         seed)
    trace;
  if seed = 901L then
    note_metrics ~experiment:"e9"
      ~cell:(if same_view_delivery then "via-gb" else "via-ab")
      (Metrics.merged (Array.to_list stacks |> List.map Stack.metrics));
  (!violations, !compared, Tr.default_config.hb_period)

let run () =
  section
    "E9  Ablation (D3): view changes through generic vs plain atomic broadcast"
    "routing view changes through generic broadcast gives same view delivery \
     for free (Section 4.4); bypassing it breaks the property for commuting \
     messages";
  let rows =
    List.concat_map
      (fun seed ->
        let v_on, c_on, _ = run_variant ~same_view_delivery:true ~seed in
        let v_off, c_off, _ = run_variant ~same_view_delivery:false ~seed in
        [
          [
            Printf.sprintf "%Ld" seed;
            "via generic broadcast";
            fmt_int c_on;
            fmt_int v_on;
          ];
          [ ""; "via plain atomic broadcast"; fmt_int c_off; fmt_int v_off ];
        ])
      [ 901L; 902L; 903L ]
  in
  Stats.print_table
    ~header:
      [ "seed"; "view-change routing"; "pairs compared"; "same-view violations" ]
    rows;
  conclude
    "the paper's wiring shows zero same-view-delivery violations by \
     construction; the ablation delivers some commuting messages in \
     different views at different processes — the property view synchrony \
     existed to provide, recovered here without any blocking."
