(* Experiment harness: regenerates every table of EXPERIMENTS.md.

   Usage:
     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe e3 e5      # a selection
     dune exec bench/main.exe micro      # wall-clock micro-benchmarks only *)

let experiments =
  [
    ("e1", E1_complexity.run);
    ("e2", E2_generic_vs_atomic.run);
    ("e3", E3_crash_responsiveness.run);
    ("e4", E4_false_suspicions.run);
    ("e5", E5_view_change_blocking.run);
    ("e6", E6_passive_replication.run);
    ("e7", E7_scalability.run);
    ("e8", E8_monitoring_policies.run);
    ("e9", E9_same_view_delivery.run);
    ("e10", E10_loopback.run);
    ("micro", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested;
  Bench_util.write_metrics_file ();
  if !Bench_util.audit_failures > 0 then begin
    Printf.eprintf "\n%d experiment cell(s) FAILED the trace audit\n"
      !Bench_util.audit_failures;
    exit 1
  end;
  print_endline "all audited experiment cells passed the trace audit"
