(* E5 — Section 4.4: sender blocking during view changes.

   Traditional view synchrony implements "sending view delivery": during a
   view change every member must stop sending until the flush completes
   (Ensemble's Sync layer).  The generic-broadcast-based membership gives
   "same view delivery" with no sender blocking.

   Workload: a steady totally-ordered stream while one member leaves and
   rejoins on a cycle.  We measure cumulative sender-blocked time and the
   latency distribution of messages sent during churn. *)

open Bench_util

let n = 4
let horizon = 20_000.0
let load_period = 10.0
let churner = n - 1

let load_count = int_of_float ((horizon -. 2_000.0) /. load_period)

let run_new ~churn_period ~seed =
  let config =
    Stack.Config.make ~runtime:Stack.Config.Sim ~state_transfer_delay:20.0 ()
  in
  let w = new_world ~config ~seed ~n () in
  drive_load w
    ~send:(fun s p -> if not (Stack.left s) then Stack.abcast s p)
    ~start:500.0 ~period:load_period ~count:load_count;
  (* Churn cycle: the churner leaves, then forces a rejoin. *)
  let rec cycle at =
    if at +. churn_period < horizon -. 2_000.0 then begin
      ignore
        (Engine.schedule w.engine ~delay:at (fun () ->
             Stack.remove w.stacks.(churner) churner));
      ignore
        (Engine.schedule w.engine
           ~delay:(at +. (churn_period /. 2.0))
           (fun () -> Stack.join ~force:true w.stacks.(churner) ~via:0));
      cycle (at +. churn_period)
    end
  in
  cycle 1_000.0;
  Engine.run ~until:horizon w.engine;
  let lat = latencies_of w 0 in
  note_world_metrics ~experiment:"e5"
    ~cell:(Printf.sprintf "new-churn%.0f" churn_period)
    w;
  ( delivered_count w 0,
    Stats.mean lat,
    Stats.percentile lat 95.0,
    Stats.max_value lat,
    0.0,
    Gc_membership.Group_membership.view_changes (Stack.membership w.stacks.(0)) )

let run_trad ~churn_period ~seed =
  let config =
    { Tr.default_config with state_transfer_delay = 20.0 }
  in
  let w = trad_world ~config ~seed ~n () in
  drive_load w
    ~send:(fun s p -> if Tr.is_member s then Tr.abcast s p)
    ~start:500.0 ~period:load_period ~count:load_count;
  let rec cycle at =
    if at +. churn_period < horizon -. 2_000.0 then begin
      ignore
        (Engine.schedule w.engine ~delay:at (fun () -> Tr.leave w.stacks.(churner)));
      ignore
        (Engine.schedule w.engine
           ~delay:(at +. (churn_period /. 2.0))
           (fun () -> Tr.join w.stacks.(churner) ~via:0));
      cycle (at +. churn_period)
    end
  in
  cycle 1_000.0;
  Engine.run ~until:horizon w.engine;
  let lat = latencies_of w 0 in
  let blocked =
    Array.fold_left (fun acc s -> acc +. Tr.blocked_time_total s) 0.0 w.stacks
  in
  note_world_metrics ~experiment:"e5"
    ~cell:(Printf.sprintf "trad-churn%.0f" churn_period)
    w;
  ( delivered_count w 0,
    Stats.mean lat,
    Stats.percentile lat 95.0,
    Stats.max_value lat,
    blocked,
    Tr.view_changes w.stacks.(0) )

let run () =
  section "E5  Sender blocking during view changes (Section 4.4)"
    "sending view delivery forces senders to block during the change; the \
     generic-broadcast solution delivers the same view everywhere without \
     blocking anybody";
  let rows =
    List.concat_map
      (fun churn_period ->
        let nd, nm, np, nmax, nb, nv = run_new ~churn_period ~seed:501L in
        let td, tm, tp, tmax, tb, tv = run_trad ~churn_period ~seed:501L in
        [
          [
            Printf.sprintf "%.0f ms" churn_period;
            "new";
            fmt_int nd;
            fmt_f1 nm;
            fmt_f1 np;
            fmt_f1 nmax;
            fmt_f1 nb;
            fmt_int nv;
          ];
          [
            "";
            "traditional";
            fmt_int td;
            fmt_f1 tm;
            fmt_f1 tp;
            fmt_f1 tmax;
            fmt_f1 tb;
            fmt_int tv;
          ];
        ])
      [ 5_000.0; 2_000.0; 1_000.0 ]
  in
  Stats.print_table
    ~header:
      [
        "churn cycle"; "arch"; "delivered"; "mean ms"; "p95 ms"; "max ms";
        "sender blocked ms"; "view changes";
      ]
    rows;
  conclude
    "the traditional stack accumulates sender-blocked time proportional to \
     the churn rate (every member pauses for each flush; with larger groups \
     or slower state the pauses stretch); the new stack never blocks \
     senders — view changes are just messages in the total order."
