(* E1 — Section 4.1 / Figures 1-9: "the ordering problem is solved once".

   Part A is the structural audit: which components of each architecture
   implement an ordering protocol.  Part B runs identical failure-free
   workloads on both stacks and counts protocol messages — per totally
   ordered broadcast and per view change — for several group sizes. *)

open Bench_util

let structural_audit () =
  print_endline "A. Where is ordering implemented? (structural audit)";
  print_endline "";
  Gc_sim.Stats.print_table
    ~header:
      [ "architecture"; "ordering protocol"; "component"; "orders what" ]
    [
      [ "traditional (GM-VS)"; "1. view agreement"; "membership"; "views" ];
      [ ""; "2. flush/cut"; "view synchrony"; "messages vs views" ];
      [ ""; "3. sequencer"; "atomic broadcast"; "application messages" ];
      [ "totem (ring)"; "1. ring agreement"; "membership+recovery"; "views, refills" ];
      [ ""; "2. token sequencing"; "atomic broadcast"; "application messages" ];
      [ "new (AB-GB)"; "1. consensus batches"; "atomic broadcast"; "everything:" ];
      [ ""; ""; ""; "messages, views, cuts" ];
    ];
  print_endline "";
  print_endline
    "  (in this repository: lib/traditional implements all three traditional\n\
    \   protocols; in lib/core the single ordering engine is lib/consensus,\n\
    \   reused by lib/abcast for messages, lib/membership for views and\n\
    \   lib/gbcast for conflict cuts)";
  print_endline ""

let messages_per_abcast () =
  print_endline "B. Protocol messages per totally-ordered broadcast (failure-free)";
  print_endline "";
  let count = 50 in
  let row n =
    let new_msgs =
      let w = new_world ~seed:101L ~n () in
      (* Let heartbeats reach steady state before measuring. *)
      Engine.run ~until:500.0 w.engine;
      Netsim.reset_counters w.net;
      drive_load w
        ~send:(fun s p -> Stack.abcast s p)
        ~start:0.0 ~period:20.0 ~count;
      Engine.run ~until:(500.0 +. (float_of_int count *. 20.0) +. 1_000.0)
        w.engine;
      note_world_metrics ~experiment:"e1" ~cell:(Printf.sprintf "new-n%d" n) w;
      Netsim.messages_sent w.net
    in
    let trad_msgs =
      let w = trad_world ~seed:101L ~n () in
      Engine.run ~until:500.0 w.engine;
      Netsim.reset_counters w.net;
      drive_load w ~send:(fun s p -> Tr.abcast s p) ~start:0.0 ~period:20.0
        ~count;
      Engine.run ~until:(500.0 +. (float_of_int count *. 20.0) +. 1_000.0)
        w.engine;
      note_world_metrics ~experiment:"e1" ~cell:(Printf.sprintf "trad-n%d" n) w;
      Netsim.messages_sent w.net
    in
    (* Heartbeat background over the same horizon, to subtract. *)
    let hb_background stacks_kind =
      let horizon = (float_of_int count *. 20.0) +. 1_000.0 in
      let msgs =
        match stacks_kind with
        | `New ->
            let w = new_world ~seed:101L ~n () in
            Engine.run ~until:500.0 w.engine;
            Netsim.reset_counters w.net;
            Engine.run ~until:(500.0 +. horizon) w.engine;
            Netsim.messages_sent w.net
        | `Trad ->
            let w = trad_world ~seed:101L ~n () in
            Engine.run ~until:500.0 w.engine;
            Netsim.reset_counters w.net;
            Engine.run ~until:(500.0 +. horizon) w.engine;
            Netsim.messages_sent w.net
      in
      msgs
    in
    let totem_msgs =
      let w = totem_world ~seed:101L ~n () in
      Engine.run ~until:500.0 w.engine;
      Netsim.reset_counters w.net;
      drive_load w ~send:(fun s p -> Tt.abcast s p) ~start:0.0 ~period:20.0
        ~count;
      Engine.run ~until:(500.0 +. (float_of_int count *. 20.0) +. 1_000.0)
        w.engine;
      Netsim.messages_sent w.net
    in
    let totem_background () =
      (* Heartbeats plus idle token rotation. *)
      let w = totem_world ~seed:101L ~n () in
      Engine.run ~until:500.0 w.engine;
      Netsim.reset_counters w.net;
      Engine.run
        ~until:(500.0 +. (float_of_int count *. 20.0) +. 1_000.0)
        w.engine;
      Netsim.messages_sent w.net
    in
    let per_cast total background =
      float_of_int (total - background) /. float_of_int count
    in
    [
      fmt_int n;
      fmt_f1 (per_cast new_msgs (hb_background `New));
      fmt_f1 (per_cast trad_msgs (hb_background `Trad));
      fmt_f1 (per_cast totem_msgs (totem_background ()));
    ]
  in
  Gc_sim.Stats.print_table
    ~header:
      [
        "n"; "new arch msgs/abcast"; "traditional msgs/abcast";
        "totem ring msgs/abcast";
      ]
    (List.map row [ 3; 5; 7 ]);
  print_endline ""

let messages_per_view_change () =
  print_endline "C. Protocol messages per view change (remove one member)";
  print_endline
    "   (same world: idle window vs change window, slow heartbeats to keep\n\
    \    the background small)";
  print_endline "";
  let window = 800.0 in
  let row n =
    let measure ~idle_then_change =
      let idle, change = idle_then_change () in
      change - idle
    in
    let new_diff =
      measure ~idle_then_change:(fun () ->
          let config = Stack.Config.make ~runtime:Stack.Config.Sim ~hb_period:250.0 () in
          let w = new_world ~config ~seed:103L ~n () in
          Engine.run ~until:1_000.0 w.engine;
          Netsim.reset_counters w.net;
          Engine.run ~until:(1_000.0 +. window) w.engine;
          let idle = Netsim.messages_sent w.net in
          Netsim.reset_counters w.net;
          Stack.remove w.stacks.(0) (n - 1);
          Engine.run ~until:(1_000.0 +. (2.0 *. window)) w.engine;
          (idle, Netsim.messages_sent w.net))
    in
    let trad_diff =
      measure ~idle_then_change:(fun () ->
          let config = { Tr.default_config with hb_period = 250.0 } in
          let w = trad_world ~config ~seed:103L ~n () in
          Engine.run ~until:1_000.0 w.engine;
          Netsim.reset_counters w.net;
          Engine.run ~until:(1_000.0 +. window) w.engine;
          let idle = Netsim.messages_sent w.net in
          Netsim.reset_counters w.net;
          Tr.leave w.stacks.(n - 1);
          Engine.run ~until:(1_000.0 +. (2.0 *. window)) w.engine;
          (idle, Netsim.messages_sent w.net))
    in
    [ fmt_int n; fmt_int new_diff; fmt_int trad_diff ]
  in
  Gc_sim.Stats.print_table
    ~header:[ "n"; "new arch msgs/view change"; "traditional msgs/view change" ]
    (List.map row [ 3; 5; 7 ]);
  print_endline ""

let run () =
  section "E1  Architectural complexity (Section 4.1, Figures 1-9)"
    "ordering is solved once (consensus) instead of three times; the \
     redundancy costs protocol machinery, not necessarily messages";
  structural_audit ();
  messages_per_abcast ();
  messages_per_view_change ();
  conclude
    "one ordering engine (consensus) serves messages, views and cuts in the \
     new architecture; the traditional stack runs three ordering protocols \
     (and its sequencer is message-cheaper failure-free, as expected)."
