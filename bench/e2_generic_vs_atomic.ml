(* E2 — Section 4.2: generic broadcast makes commutative operations cheap.

   The paper's bank: deposits commute, withdrawals conflict.  We sweep the
   fraction of commutative operations and compare state-machine replication
   over generic broadcast (class-aware) against the same service where every
   command goes through atomic broadcast. *)

open Bench_util
module Sm = Gc_replication.State_machine
module Active = Gc_replication.Active
module Active_gb = Gc_replication.Active_gb
module Client = Gc_replication.Client

let n_replicas = 3
let n_requests = 60
let request_period = 25.0

let workload rng ~commuting_pct k =
  ignore k;
  let account = Rng.int rng 4 in
  if Rng.int rng 100 < commuting_pct then
    Sm.Bank.Deposit { account; amount = 10 }
  else Sm.Bank.Withdraw { account; amount = 5 }

let run_cell ~use_generic ~commuting_pct ~seed =
  let engine, trace, net = base_net ~seed ~n:(n_replicas + 1) () in
  let replicas = List.init n_replicas (fun i -> i) in
  let stacks =
    if use_generic then
      List.map
        (fun id ->
          Active_gb.stack
            (Active_gb.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas
               ~classify:Sm.Bank.classify ~make_sm:Sm.Bank.make ()))
        replicas
    else
      List.map
        (fun id ->
          Active.stack
            (Active.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas
               ~make_sm:Sm.Bank.make ()))
        replicas
  in
  let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:n_replicas ~replicas () in
  let rng = Engine.split_rng engine in
  let lat = Stats.sample () in
  Engine.run ~until:300.0 engine;
  Netsim.reset_counters net;
  for k = 0 to n_requests - 1 do
    let cmd = workload rng ~commuting_pct k in
    ignore
      (Engine.schedule engine
         ~delay:(float_of_int k *. request_period)
         (fun () ->
           Client.request client ~cmd ~on_reply:(fun _ ~latency ->
               Stats.add lat latency)))
  done;
  Engine.run
    ~until:(300.0 +. (float_of_int n_requests *. request_period) +. 2_000.0)
    engine;
  let stack0 = List.hd stacks in
  let instances =
    Gc_abcast.Atomic_broadcast.next_instance (Stack.atomic_broadcast stack0)
  in
  let fast =
    Gc_gbcast.Generic_broadcast.fast_delivered_count
      (Stack.generic_broadcast stack0)
  in
  let cell =
    Printf.sprintf "%s-%d%%"
      (if use_generic then "generic" else "atomic")
      commuting_pct
  in
  audit_trace ~experiment:"e2" ~cell trace;
  note_metrics ~experiment:"e2" ~cell
    (Metrics.merged (List.map Stack.metrics stacks));
  (Stats.count lat, Stats.mean lat, Stats.percentile lat 95.0, instances, fast,
   Netsim.messages_sent net)

let run () =
  section "E2  Generic vs atomic broadcast on the bank workload (Section 4.2)"
    "commutative operations (deposits) need no ordering: generic broadcast \
     skips consensus for them, atomic broadcast pays for every operation";
  let rows =
    List.concat_map
      (fun commuting_pct ->
        let served_g, mean_g, p95_g, inst_g, fast_g, msg_g =
          run_cell ~use_generic:true ~commuting_pct ~seed:211L
        and served_a, mean_a, p95_a, inst_a, _fast_a, msg_a =
          run_cell ~use_generic:false ~commuting_pct ~seed:211L
        in
        [
          [
            Printf.sprintf "%3d%%" commuting_pct;
            "generic";
            Printf.sprintf "%d/%d" served_g n_requests;
            fmt_f1 mean_g;
            fmt_f1 p95_g;
            fmt_int inst_g;
            fmt_int fast_g;
            fmt_int msg_g;
          ];
          [
            "";
            "atomic";
            Printf.sprintf "%d/%d" served_a n_requests;
            fmt_f1 mean_a;
            fmt_f1 p95_a;
            fmt_int inst_a;
            "0";
            fmt_int msg_a;
          ];
        ])
      [ 0; 25; 50; 75; 90; 100 ]
  in
  Stats.print_table
    ~header:
      [
        "commuting"; "broadcast"; "served"; "mean ms"; "p95 ms";
        "consensus inst"; "fast-path"; "msgs";
      ]
    rows;
  conclude
    "generic broadcast's consensus usage falls towards zero as the workload \
     commutes; atomic broadcast's stays proportional to the request count. \
     At 100% commuting the generic run uses no consensus at all (pure fast \
     path)."
