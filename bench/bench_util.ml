(* Shared machinery for the experiment harness: world builders for both
   architectures, workload generators, fault injectors and measurement
   helpers.  Every experiment (e1 .. e8) builds on these. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Rng = Gc_sim.Rng
module Stats = Gc_sim.Stats
module Netsim = Gc_net.Netsim
module Delay = Gc_net.Delay
module View = Gc_membership.View
module Stack = Gcs.Gcs_stack
module Tr = Gc_traditional.Traditional_stack
module Tt = Gc_totem.Totem_stack
module Metrics = Gc_obs.Metrics
module Json = Gc_obs.Json
module Process = Gc_kernel.Process

type Gc_net.Payload.t += Load of { k : int; sent_at : float }

let () =
  Gc_net.Payload.register_printer (function
    | Load { k; _ } -> Some (Printf.sprintf "load#%d" k)
    | _ -> None)

(* One delivery record: payload number, sender, virtual receive time. *)
type delivery = { k : int; sent_at : float; recv_at : float }

type 'stack world = {
  engine : Engine.t;
  net : Netsim.t;
  trace : Trace.t;
  stacks : 'stack array;
  deliveries : delivery list ref array; (* newest first, per node *)
  metrics : Metrics.t array; (* per-node layer metrics *)
}

(* Every cell records its causal event trace by default so the harness can
   audit it (see [audit_trace]); the Bechamel micro-benchmarks pass
   [~record:false] because they measure wall-clock cost. *)
let base_net ?(delay = Delay.lan) ?(record = true) ~seed ~n () =
  let engine = Engine.create ~seed () in
  let trace = Trace.create ~enabled:record ~capacity:500_000 () in
  let net = Netsim.create engine ~trace ~delay ~n () in
  (engine, trace, net)

(* ---------- world builders ---------- *)

let new_world ?delay ?record ?(config = Stack.default_config) ~seed ~n () =
  let engine, trace, net = base_net ?delay ?record ~seed ~n () in
  let initial = List.init n (fun i -> i) in
  let deliveries = Array.init n (fun _ -> ref []) in
  let stacks =
    Array.init n (fun id ->
        let s = Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config () in
        Stack.on_deliver s (fun ~origin:_ ~ordered:_ payload ->
            match payload with
            | Load { k; sent_at } ->
                deliveries.(id) :=
                  { k; sent_at; recv_at = Engine.now engine }
                  :: !(deliveries.(id))
            | _ -> ());
        s)
  in
  let metrics = Array.map Stack.metrics stacks in
  { engine; net; trace; stacks; deliveries; metrics }

let trad_world ?delay ?record ?(config = Tr.default_config) ~seed ~n () =
  let engine, trace, net = base_net ?delay ?record ~seed ~n () in
  let initial = List.init n (fun i -> i) in
  let deliveries = Array.init n (fun _ -> ref []) in
  let stacks =
    Array.init n (fun id ->
        let s = Tr.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config () in
        Tr.on_deliver s (fun ~origin:_ ~ordered:_ payload ->
            match payload with
            | Load { k; sent_at } ->
                deliveries.(id) :=
                  { k; sent_at; recv_at = Engine.now engine }
                  :: !(deliveries.(id))
            | _ -> ());
        s)
  in
  let metrics = Array.map (fun s -> Process.metrics (Tr.process s)) stacks in
  { engine; net; trace; stacks; deliveries; metrics }

let totem_world ?delay ?record ?(config = Tt.default_config) ~seed ~n () =
  let engine, trace, net = base_net ?delay ?record ~seed ~n () in
  let initial = List.init n (fun i -> i) in
  let deliveries = Array.init n (fun _ -> ref []) in
  let stacks =
    Array.init n (fun id ->
        let s = Tt.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config () in
        Tt.on_deliver s (fun ~origin:_ payload ->
            match payload with
            | Load { k; sent_at } ->
                deliveries.(id) :=
                  { k; sent_at; recv_at = Engine.now engine }
                  :: !(deliveries.(id))
            | _ -> ());
        s)
  in
  let metrics = Array.map (fun s -> Process.metrics (Tt.process s)) stacks in
  { engine; net; trace; stacks; deliveries; metrics }

(* ---------- workload ---------- *)

(* Broadcast [count] Load messages, one every [period] ms starting at
   [start], round-robin over senders.  [send] abstracts the primitive. *)
let drive_load w ~send ~start ~period ~count =
  let n = Array.length w.stacks in
  for k = 0 to count - 1 do
    let at = start +. (float_of_int k *. period) in
    let sender = k mod n in
    ignore
      (Engine.schedule w.engine ~delay:at (fun () ->
           send w.stacks.(sender) (Load { k; sent_at = Engine.now w.engine })))
  done

(* ---------- fault injection ---------- *)

(* Periodic transient delay spikes at random nodes: the source of wrong
   suspicions in the responsiveness experiments.  [rate] spikes per second,
   each adding [extra] ms to one node's sends for [width] ms. *)
let inject_spikes w ?(exclude = []) ~until ~rate ~extra ~width () =
  if rate > 0.0 then begin
    let rng = Engine.split_rng w.engine in
    let n = Array.length w.stacks in
    let victims =
      List.filter (fun i -> not (List.mem i exclude)) (List.init n (fun i -> i))
    in
    let period = 1000.0 /. rate in
    let rec arm at =
      if at < until then
        ignore
          (Engine.schedule w.engine ~delay:at (fun () ->
               let v = Rng.pick rng victims in
               Netsim.delay_spike w.net ~nodes:[ v ]
                 ~until:(Engine.now w.engine +. width)
                 ~extra));
      if at < until then arm (at +. period)
    in
    arm (period /. 2.0)
  end

(* Per-link blackouts: one observer loses one peer's messages for [width]
   ms — the observer-local wrong suspicion that corroboration (threshold
   policies) is meant to filter out. *)
let inject_link_flaps w ?(exclude = []) ~until ~rate ~width () =
  if rate > 0.0 then begin
    let rng = Engine.split_rng w.engine in
    let n = Array.length w.stacks in
    let nodes =
      List.filter (fun i -> not (List.mem i exclude)) (List.init n (fun i -> i))
    in
    let period = 1000.0 /. rate in
    let rec arm at =
      if at < until then begin
        ignore
          (Engine.schedule w.engine ~delay:at (fun () ->
               let src = Rng.pick rng nodes in
               let dst = Rng.pick rng (List.filter (fun q -> q <> src) nodes) in
               Netsim.set_link w.net ~src ~dst ~drop:1.0 ();
               ignore
                 (Engine.schedule w.engine ~delay:width (fun () ->
                      Netsim.set_link w.net ~src ~dst ~drop:0.0 ()))));
        arm (at +. period)
      end
    in
    arm (period /. 2.0)
  end

(* ---------- measurements ---------- *)

let latencies_of w node =
  let s = Stats.sample () in
  List.iter (fun d -> Stats.add s (d.recv_at -. d.sent_at)) !(w.deliveries.(node));
  s

(* Longest gap between consecutive deliveries at [node] within the window —
   the service blackout around a failure. *)
let max_delivery_gap w node ~from_t ~to_t =
  let times =
    !(w.deliveries.(node))
    |> List.filter_map (fun d ->
           if d.recv_at >= from_t && d.recv_at <= to_t then Some d.recv_at
           else None)
    |> List.sort Float.compare
  in
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (Float.max acc (b -. a)) rest
    | [ last ] -> Float.max acc (to_t -. last)
    | [] -> to_t -. from_t
  in
  go 0.0 times

let delivered_count w node = List.length !(w.deliveries.(node))

(* Recovery latency: time from the crash to the first delivery (at [node])
   of a message sent after the crash — the client-visible outage after a
   failure, independent of ambient jitter before it. *)
let recovery_after w node ~crash_at =
  !(w.deliveries.(node))
  |> List.filter_map (fun d ->
         if d.sent_at > crash_at then Some d.recv_at else None)
  |> List.fold_left Float.min infinity
  |> fun first -> if first = infinity then nan else first -. crash_at

(* ---------- trace audits ---------- *)

module Audit = Gc_obs.Audit

(* Violations found while auditing experiment cells.  bench/main.ml checks
   this after all experiments ran and fails the whole run: a bench binary
   exiting non-zero means a recorded history broke a protocol invariant. *)
let audit_failures = ref 0

(* Replay a cell's recorded trace through the offline auditor.  Same-view
   needs each node's full history from time zero, so it is dropped when the
   ring buffer evicted records. *)
let audit_trace ?(checks = Audit.all_checks) ~experiment ~cell trace =
  if Trace.enabled trace then begin
    let checks =
      if Trace.dropped trace > 0 then
        List.filter (fun c -> c <> Audit.Same_view) checks
      else checks
    in
    let report = Audit.run ~checks (Trace.records trace) in
    if not (Audit.ok report) then begin
      incr audit_failures;
      Printf.printf "\nAUDIT FAILURE [%s/%s]:\n" experiment cell;
      Format.printf "%a@." Audit.pp_report report
    end
  end

(* ---------- metrics emission ---------- *)

let merged_metrics w = Metrics.merged (Array.to_list w.metrics)

(* Representative cells accumulated across experiments, then dumped as one
   machine-readable document by [write_metrics_file] (bench/main.ml calls it
   after the selected experiments ran). *)
let metrics_notes : (string * (string * Json.t)) list ref = ref []

let note_metrics ~experiment ~cell m =
  metrics_notes := (experiment, (cell, Metrics.to_json m)) :: !metrics_notes

(* Noting a world's metrics also audits its trace: every reported cell is a
   checked cell. *)
let note_world_metrics ?checks ~experiment ~cell w =
  audit_trace ?checks ~experiment ~cell w.trace;
  note_metrics ~experiment ~cell (merged_metrics w)

let write_metrics_file ?(path = "BENCH_metrics.json") () =
  let notes = List.rev !metrics_notes in
  let experiments =
    List.fold_left
      (fun acc (e, _) -> if List.mem e acc then acc else acc @ [ e ])
      [] notes
  in
  let doc =
    Json.Obj
      (List.map
         (fun e ->
           (e, Json.Obj (List.filter_map
                           (fun (e', cell) -> if e' = e then Some cell else None)
                           notes)))
         experiments)
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nmetrics written to %s (%d experiments, %d cells)\n" path
    (List.length experiments) (List.length notes)

let fmt_int = string_of_int
let fmt_f1 x = if Float.is_nan x then "-" else Printf.sprintf "%.1f" x

let section title claim =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "paper claim: %s\n" claim;
  Printf.printf "================================================================\n\n"

let conclude text = Printf.printf "\n=> %s\n" text
