(* Wall-clock micro-benchmarks (Bechamel): cost of the simulator and of the
   protocol stacks per delivered message.  These measure the implementation,
   not the paper's claims — the experiment tables (E1..E8) measure those in
   virtual time. *)

open Bench_util
module B = Bechamel
module Toolkit = Bechamel.Toolkit

let engine_events =
  B.Test.make ~name:"engine: schedule+run 10k events"
    (B.Staged.stage (fun () ->
         let e = Engine.create ~seed:1L () in
         for i = 0 to 9_999 do
           ignore (Engine.schedule e ~delay:(float_of_int (i mod 100)) (fun () -> ()))
         done;
         Engine.run e))

let abcast_run =
  B.Test.make ~name:"new stack: 20 abcasts, n=3 (full sim)"
    (B.Staged.stage (fun () ->
         let w = new_world ~record:false ~seed:2L ~n:3 () in
         drive_load w
           ~send:(fun s p -> Stack.abcast s p)
           ~start:10.0 ~period:10.0 ~count:20;
         Engine.run ~until:1_000.0 w.engine))

let gbcast_fast_run =
  B.Test.make ~name:"new stack: 20 rbcasts (fast path), n=3"
    (B.Staged.stage (fun () ->
         let w = new_world ~record:false ~seed:3L ~n:3 () in
         drive_load w
           ~send:(fun s p -> Stack.rbcast s p)
           ~start:10.0 ~period:10.0 ~count:20;
         Engine.run ~until:1_000.0 w.engine))

let traditional_run =
  B.Test.make ~name:"traditional stack: 20 abcasts, n=3"
    (B.Staged.stage (fun () ->
         let w = trad_world ~record:false ~seed:4L ~n:3 () in
         drive_load w ~send:(fun s p -> Tr.abcast s p) ~start:10.0 ~period:10.0
           ~count:20;
         Engine.run ~until:1_000.0 w.engine))

let benchmark () =
  let tests =
    B.Test.make_grouped ~name:"groupcomm"
      [ engine_events; abcast_run; gbcast_fast_run; traditional_run ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = B.Benchmark.cfg ~limit:200 ~quota:(B.Time.second 0.5) () in
  let raw = B.Benchmark.all cfg instances tests in
  let results =
    B.Analyze.all (B.Analyze.ols ~bootstrap:0 ~r_square:true
                     ~predictors:[| B.Measure.run |])
      (Toolkit.Instance.monotonic_clock) raw
  in
  Hashtbl.iter
    (fun name result ->
      match B.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-45s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-45s (no estimate)\n" name)
    results

(* A single non-benchmarked run of the abcast workload, so `micro` also
   contributes a metrics cell (the Bechamel closures above run hundreds of
   times and must stay note-free). *)
let note_reference_run () =
  let w = new_world ~seed:2L ~n:3 () in
  drive_load w
    ~send:(fun s p -> Stack.abcast s p)
    ~start:10.0 ~period:10.0 ~count:20;
  Engine.run ~until:1_000.0 w.engine;
  note_world_metrics ~experiment:"micro" ~cell:"abcast-n3" w

let run () =
  section "MICRO  Wall-clock micro-benchmarks (Bechamel)"
    "(implementation cost, not a paper claim)";
  note_reference_run ();
  benchmark ()
