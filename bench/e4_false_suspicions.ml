(* E4 — Section 4.3: the cost of false suspicions, at a fixed (small)
   timeout, as the rate of transient delay spikes grows.  No process ever
   crashes: every suspicion is wrong.

   New architecture: a wrong suspicion costs at most an extra consensus
   round.  Traditional: it costs an exclusion, a blocking flush at everyone,
   a rejoin and a state transfer at the victim. *)

open Bench_util

let n = 4
let horizon = 30_000.0
let load_period = 25.0
let timeout = 150.0
let spike_extra = 280.0
let spike_width = 300.0

let load_count = int_of_float ((horizon -. 2_000.0) /. load_period)

let run_new ~rate ~seed =
  let config =
    Stack.Config.make ~runtime:Stack.Config.Sim ~consensus_timeout:timeout ~exclusion_timeout:4_000.0 ()
  in
  let w = new_world ~config ~seed ~n () in
  drive_load w
    ~send:(fun s p -> Stack.abcast s p)
    ~start:500.0 ~period:load_period ~count:load_count;
  inject_spikes w ~until:horizon ~rate ~extra:spike_extra ~width:spike_width ();
  Engine.run ~until:horizon w.engine;
  let lat = latencies_of w 1 in
  let excluded =
    n - View.size (Stack.view w.stacks.(1))
  in
  note_world_metrics ~experiment:"e4" ~cell:(Printf.sprintf "new-rate%.1f" rate) w;
  (delivered_count w 1, Stats.mean lat, Stats.percentile lat 95.0, excluded, 0.0)

let run_trad ~rate ~seed =
  let config =
    { Tr.default_config with fd_timeout = timeout; state_transfer_delay = 100.0 }
  in
  let w = trad_world ~config ~seed ~n () in
  drive_load w
    ~send:(fun s p -> if Tr.is_member s then Tr.abcast s p)
    ~start:500.0 ~period:load_period ~count:load_count;
  inject_spikes w ~until:horizon ~rate ~extra:spike_extra ~width:spike_width ();
  Engine.run ~until:horizon w.engine;
  let lat = latencies_of w 1 in
  let exclusions =
    Array.fold_left (fun acc s -> acc + Tr.exclusions_suffered s) 0 w.stacks
  in
  let excluded_time =
    Array.fold_left (fun acc s -> acc +. Tr.excluded_time_total s) 0.0 w.stacks
  in
  (* Under injected wrong suspicions the coordinator-mode (Isis-style)
     stack can briefly fork: two overlapping majorities install rival views
     with the same vid and rival sequencers reuse sequence numbers until
     the loser is excluded.  That total-order breach is the old-generation
     defect this experiment exists to exhibit (the paper's consensus-based
     membership is the cure), so the auditor's total-order check is waived
     for the fault-injected traditional cells — the remaining invariants
     must still hold. *)
  let checks =
    if rate > 0.0 then
      List.filter (fun c -> c <> Audit.Total_order) Audit.all_checks
    else Audit.all_checks
  in
  note_world_metrics ~checks ~experiment:"e4"
    ~cell:(Printf.sprintf "trad-rate%.1f" rate)
    w;
  ( delivered_count w 1,
    Stats.mean lat,
    Stats.percentile lat 95.0,
    exclusions,
    excluded_time )

let run () =
  section "E4  Cost of false suspicions (Section 4.3)"
    "with suspicion decoupled from exclusion, false suspicions cause small \
     overhead; in the traditional architecture they cause exclusions, \
     blocking flushes and state-transfer rejoins";
  let rows =
    List.concat_map
      (fun rate ->
        let nd, nm, np, nex, _ = run_new ~rate ~seed:401L in
        let td, tm, tp, tex, texcl_t = run_trad ~rate ~seed:401L in
        [
          [
            Printf.sprintf "%.1f/s" rate;
            "new";
            Printf.sprintf "%d/%d" nd load_count;
            fmt_f1 nm;
            fmt_f1 np;
            fmt_int nex;
            "-";
          ];
          [
            "";
            "traditional";
            Printf.sprintf "%d/%d" td load_count;
            fmt_f1 tm;
            fmt_f1 tp;
            fmt_int tex;
            fmt_f1 texcl_t;
          ];
        ])
      [ 0.0; 0.5; 1.0; 2.0 ]
  in
  Stats.print_table
    ~header:
      [
        "spike rate"; "arch"; "delivered"; "mean ms"; "p95 ms";
        "exclusions"; "excluded time ms";
      ]
    rows;
  conclude
    "the new architecture keeps the membership intact at every spike rate \
     (exclusions stay 0) and degrades only in tail latency; the traditional \
     stack excludes live processes at increasing rate and accumulates \
     member downtime."
