(* E10 — Loopback load generator: the real-network runtime under load.

   Unlike E1–E9 this cell is wall-clock, not simulated: it boots a
   three-replica gcs_server cluster in-process (one select loop, TCP over
   127.0.0.1, port-0 binds) and drives it through the client wire
   protocol with a windowed closed loop of mixed commuting/conflicting
   operations.  Reported: throughput, client-observed latency, and the
   replicas' order/state digests — which must be identical, the same
   oracle the CI smoke job applies to the multi-process cluster. *)

module Evloop = Gc_runtime_unix.Evloop
module Fconn = Gc_runtime_unix.Fconn
module Server = Gc_server.Server
module Proto = Gc_server.Proto
module Kv = Gc_server.Kv
module Stack = Gcs.Gcs_stack
module Metrics = Gc_obs.Metrics

let n = 3
let total_ops = 600
let window = 16
let conflicting_pct = 25
let settle_ms = 400.0
let deadline_ms = 60_000.0

let connect_client ~loop ~metrics ~port ~on_payload =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_nonblock sock;
  let connecting =
    match Unix.connect sock addr with
    | () -> false
    | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> true
  in
  Fconn.attach ~loop ~metrics ~connecting sock ~on_payload
    ~on_close:(fun _ -> ())

let run () =
  Bench_util.section "E10: loopback load generator (real TCP runtime)"
    "the same protocol stack serves a live TCP cluster; all replicas \
     deliver one total order";
  let lm = Metrics.create () in
  let loop = Evloop.create ~metrics:lm () in
  let lo = Unix.inet_addr_loopback in
  let metrics = Array.init n (fun _ -> Metrics.create ()) in
  let servers =
    Array.init n (fun id ->
        Server.create ~loop ~id ~initial:(List.init n Fun.id)
          ~config:
            (Stack.Config.make ~runtime:Stack.Config.Unix ~hb_period:25.0
               ~consensus_timeout:400.0 ())
          ~metrics:metrics.(id)
          ~peer_listen:(Unix.ADDR_INET (lo, 0))
          ~client_listen:(Unix.ADDR_INET (lo, 0))
          ())
  in
  let peers =
    Array.to_list
      (Array.mapi
         (fun id s -> (id, Unix.ADDR_INET (lo, Server.peer_port s)))
         servers)
  in
  Array.iter (fun s -> Server.set_peers s peers) servers;
  (* The load generator: one client connection per server, windowed. *)
  let cm = Metrics.create () in
  let sent_at : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let completed = ref 0 in
  let next_op = ref 0 in
  let conns = Array.make n None in
  let rec pump target =
    if !next_op < total_ops && Hashtbl.length sent_at < window then begin
      let i = !next_op in
      incr next_op;
      let tgt = (target + i) mod n in
      match conns.(tgt) with
      | None -> ()
      | Some conn ->
          Hashtbl.replace sent_at (tgt, i) (Evloop.now loop);
          let payload =
            if i * 100 < conflicting_pct * total_ops then
              Proto.Cl_put
                { rid = i; key = Printf.sprintf "reg%d" (i mod 8);
                  value = string_of_int i }
            else Proto.Cl_incr { rid = i; key = "hits"; delta = 1 }
          in
          Fconn.send conn payload;
          pump target
    end
  in
  let on_reply tgt payload =
    match payload with
    | Proto.Cl_reply { rid; ok; _ } ->
        (match Hashtbl.find_opt sent_at (tgt, rid) with
        | Some t0 ->
            Hashtbl.remove sent_at (tgt, rid);
            incr completed;
            Metrics.observe cm "client.latency" (Evloop.now loop -. t0);
            if not ok then Metrics.incr cm "client.refused"
        | None -> ());
        pump tgt
    | _ -> Metrics.incr cm "client.unexpected"
  in
  Array.iteri
    (fun tgt s ->
      conns.(tgt) <-
        Some
          (connect_client ~loop ~metrics:cm ~port:(Server.client_port s)
             ~on_payload:(fun _ p -> on_reply tgt p)))
    servers;
  let t0 = Evloop.now loop in
  pump 0;
  while !completed < total_ops && Evloop.now loop -. t0 < deadline_ms do
    Evloop.run_once loop ~max_wait:20.0;
    pump (!completed mod n)
  done;
  let elapsed = Evloop.now loop -. t0 in
  Evloop.run_for loop settle_ms;
  let dumps = Array.map (fun s -> Kv.dump (Server.kv s)) servers in
  let digests =
    Array.map (fun s -> Kv.order_digest (Server.kv s)) servers
  in
  Array.iteri
    (fun id d -> Printf.printf "  replica %d: %s\n" id d)
    dumps;
  let order_ok = Array.for_all (fun d -> d = digests.(0)) digests in
  Printf.printf "\n  %d/%d ops in %.0f ms (%.0f op/s), p50 %.1f ms, p99 %.1f ms\n"
    !completed total_ops elapsed
    (float_of_int !completed /. elapsed *. 1000.0)
    (Metrics.quantile cm "client.latency" 0.5)
    (Metrics.quantile cm "client.latency" 0.99);
  if !completed < total_ops || not order_ok then begin
    incr Bench_util.audit_failures;
    Printf.printf "\nAUDIT FAILURE [e10/loopback]: %s\n"
      (if not order_ok then "replica order digests diverge"
       else "load generator did not complete")
  end
  else
    Bench_util.conclude
      "identical total order on every replica over real TCP loopback";
  (* Client-observed percentiles as explicit gauges, so the perf report
     reads them without re-deriving quantiles from bucket arrays.  One
     call per literal name keeps every metric statically checkable
     (lint rule E2). *)
  let q p = Metrics.quantile cm "client.latency" p in
  Metrics.set_gauge cm "client.latency_p50" (q 0.50);
  Metrics.set_gauge cm "client.latency_p90" (q 0.90);
  Metrics.set_gauge cm "client.latency_p99" (q 0.99);
  Metrics.set_gauge cm "client.latency_max" (Metrics.hist_max cm "client.latency");
  Bench_util.note_metrics ~experiment:"e10" ~cell:"loopback"
    (Metrics.merged (cm :: lm :: Array.to_list metrics));
  Array.iter Server.shutdown servers
