(* Wall-clock performance benchmark for the transport/ordering hot paths.

   Unlike bench/main.exe (virtual-time protocol experiments) this binary
   measures how fast the *simulator host* chews through the workload: real
   seconds, as reported by the wall clock, and allocation pressure from
   [Gc.quick_stat].  Three workloads, each at n in {3, 5, 8}:

   - [rchannel_echo]    one node floods every peer through the reliable
                        channel with an upfront backlog; peers echo.  This
                        is the pure window/ack hot path.
   - [abcast_saturation] every member submits its share of the load at t=0;
                        total order must absorb the full backlog (proposal
                        construction, batch decisions, delivery bookkeeping).
   - [gbcast_commuting] the full stack under a commuting-only workload:
                        rbcast fast path, acks through the reliable channel,
                        no consensus on the critical path.
   - [gbcast_batch_b*]  the same commuting workload across the submission
                        batch-size sweep (batch_max in {1, 16, 64}): the
                        cost of the gbcast hot path as batching amortises
                        the per-message relay and ack fan-out.
   - [log_recovery_*k]  crash-recovery cost vs durable-log length: a cold
                        Fstore open (CRC scan of the whole file) plus the
                        replay iteration a restarting server performs
                        before accepting traffic.

   Output is BENCH_perf.json (schema: DESIGN.md par.12).  [--smoke] shrinks
   the workload for CI; [--check FILE] compares against a committed baseline
   and fails when any cell's msgs/sec regressed by more than 2x.  Every run
   additionally fails if the stack's gbcast commuting throughput falls more
   than 3x below raw abcast at the same n (the paper's whole point is that
   commuting traffic is *cheaper* than total order).

   Usage:
     dune exec bench/perf.exe                            # full run
     dune exec bench/perf.exe -- --smoke -o BENCH_perf.json
     dune exec bench/perf.exe -- --smoke --check bench/perf_baseline.json *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module Delay = Gc_net.Delay
module Process = Gc_kernel.Process
module Fd = Gc_fd.Failure_detector
module Rc = Gc_rchannel.Reliable_channel
module Rb = Gc_rbcast.Reliable_broadcast
module Ab = Gc_abcast.Atomic_broadcast
module Stack = Gcs.Gcs_stack
module Json = Gc_obs.Json

type Gc_net.Payload.t += Ping of int | Pong of int

let () =
  Gc_net.Payload.register_printer (function
    | Ping k -> Some (Printf.sprintf "perf.ping#%d" k)
    | Pong k -> Some (Printf.sprintf "perf.pong#%d" k)
    | _ -> None)

(* ---------- measurement ---------- *)

type cell = {
  name : string;
  n : int;
  msgs : int; (* deliveries counted towards throughput *)
  wall_s : float;
  msgs_per_sec : float;
  minor_words_per_msg : float;
  promoted_words_per_msg : float;
  completed : bool;
}

(* Run [engine] in virtual-time slices until [done_ ()] or the virtual
   horizon, timing the whole drain with the wall clock.  Slicing keeps the
   idle tail (heartbeats, retransmit ticks past completion) out of the
   measurement. *)
let measure ~name ~n ~msgs ~engine ~horizon ~done_ () =
  let slice = 50.0 in
  let gc0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let rec drain until =
    Engine.run ~until engine;
    if (not (done_ ())) && until < horizon then drain (until +. slice)
  in
  drain slice;
  let wall_s = Unix.gettimeofday () -. t0 in
  let gc1 = Gc.quick_stat () in
  let completed = done_ () in
  let fm = float_of_int msgs in
  {
    name;
    n;
    msgs;
    wall_s;
    msgs_per_sec = (if wall_s > 0.0 then fm /. wall_s else infinity);
    minor_words_per_msg = (gc1.Gc.minor_words -. gc0.Gc.minor_words) /. fm;
    promoted_words_per_msg =
      (gc1.Gc.promoted_words -. gc0.Gc.promoted_words) /. fm;
    completed;
  }

let report c =
  Printf.printf "%-18s n=%d  %8d msgs  %7.3f s  %10.0f msg/s  %8.0f mw/msg%s\n%!"
    c.name c.n c.msgs c.wall_s c.msgs_per_sec c.minor_words_per_msg
    (if c.completed then "" else "  [INCOMPLETE]")

(* ---------- worlds ---------- *)

let substrate ~seed ~n =
  let engine = Engine.create ~seed () in
  let trace = Trace.create ~enabled:false () in
  let net = Netsim.create engine ~trace ~delay:Delay.lan ~n () in
  (engine, trace, net)

(* ---------- cells ---------- *)

(* Node 0 sends [count] messages upfront, spread round-robin over the peers;
   every peer echoes each delivery back.  Done when node 0 has collected all
   echoes: 2*count reliable deliveries end to end. *)
let rchannel_echo ~seed ~n ~count =
  let engine, trace, net = substrate ~seed ~n in
  let procs = Array.init n (fun id -> Process.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id) in
  let rcs = Array.map (fun p -> Rc.create p ()) procs in
  let echoes = ref 0 in
  for i = 1 to n - 1 do
    Rc.on_deliver rcs.(i) (fun ~src payload ->
        match payload with
        | Ping k -> Rc.send rcs.(i) ~dst:src (Pong k)
        | _ -> ())
  done;
  Rc.on_deliver rcs.(0) (fun ~src:_ payload ->
      match payload with Pong _ -> incr echoes | _ -> ());
  ignore
    (Engine.schedule engine ~delay:0.0 (fun () ->
         for k = 0 to count - 1 do
           Rc.send rcs.(0) ~dst:(1 + (k mod (n - 1))) (Ping k)
         done));
  measure ~name:"rchannel_echo" ~n ~msgs:(2 * count) ~engine ~horizon:60_000.0
    ~done_:(fun () -> !echoes = count)
    ()

(* Every member submits its share of [count] total-order broadcasts at t=0;
   done when every node has adelivered all of them. *)
let abcast_saturation ~seed ~n ~count =
  let engine, trace, net = substrate ~seed ~n in
  let members = List.init n (fun i -> i) in
  let abs =
    Array.init n (fun id ->
        let proc = Process.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id in
        let fd = Fd.create proc ~hb_period:20.0 ~peers:members () in
        let rc = Rc.create proc () in
        let rb = Rb.create proc rc in
        Ab.create proc ~rc ~rb ~fd ~members ())
  in
  ignore
    (Engine.schedule engine ~delay:0.0 (fun () ->
         for k = 0 to count - 1 do
           Ab.abcast abs.(k mod n) (Ping k)
         done));
  let all_delivered () =
    Array.for_all (fun ab -> Ab.delivered_count ab = count) abs
  in
  measure ~name:"abcast_saturation" ~n ~msgs:(count * n) ~engine
    ~horizon:120_000.0 ~done_:all_delivered ()

(* Full stack, commuting-only (rbcast) workload: the generic-broadcast fast
   path with its quorum acks, but no consensus on the critical path. *)
let gbcast_commuting ~seed ~n ~count =
  let w = Bench_util.new_world ~record:false ~seed ~n () in
  ignore
    (Engine.schedule w.Bench_util.engine ~delay:0.0 (fun () ->
         for k = 0 to count - 1 do
           Stack.rbcast
             w.Bench_util.stacks.(k mod n)
             (Bench_util.Load { k; sent_at = 0.0 })
         done));
  let all_delivered () =
    let ok = ref true in
    for i = 0 to n - 1 do
      if Bench_util.delivered_count w i <> count then ok := false
    done;
    !ok
  in
  measure ~name:"gbcast_commuting" ~n ~msgs:(count * n)
    ~engine:w.Bench_util.engine ~horizon:120_000.0 ~done_:all_delivered ()

(* The batch-size sweep: identical commuting workload, submission batching
   set explicitly.  [batch_max = 1] is the unbatched protocol (one reliable
   broadcast and n-1 acks per message); larger watermarks amortise both. *)
let gbcast_batch ~seed ~n ~count ~batch_max =
  let config = Stack.Config.make ~batch_max () in
  let w = Bench_util.new_world ~record:false ~config ~seed ~n () in
  ignore
    (Engine.schedule w.Bench_util.engine ~delay:0.0 (fun () ->
         for k = 0 to count - 1 do
           Stack.rbcast
             w.Bench_util.stacks.(k mod n)
             (Bench_util.Load { k; sent_at = 0.0 })
         done));
  let all_delivered () =
    let ok = ref true in
    for i = 0 to n - 1 do
      if Bench_util.delivered_count w i <> count then ok := false
    done;
    !ok
  in
  measure
    ~name:(Printf.sprintf "gbcast_batch_b%d" batch_max)
    ~n ~msgs:(count * n) ~engine:w.Bench_util.engine ~horizon:120_000.0
    ~done_:all_delivered ()

(* Crash-recovery cost as a function of log length: build a CRC-framed
   on-disk delivery log of [count] records, then time a cold open (the
   full scan-and-verify recovery pass) plus the replay iteration a
   restarting server performs before it accepts traffic.  Pure wall-clock
   file I/O — no simulator engine involved — so the cell is constructed
   directly rather than through [measure]. *)
let log_recovery ~count =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcs_perf_recovery_%d_%d" (Unix.getpid ()) count)
  in
  let st = Gc_runtime_unix.Fstore.open_dir ~dir () in
  for k = 0 to count - 1 do
    ignore
      (Gc_kernel.Storage.append st
         (Gc_kernel.Storage.Record.encode
            {
              Gc_kernel.Storage.Record.origin = k mod 5;
              seq = k;
              ordered = k mod 3 <> 0;
              payload = String.make 64 'x';
            }))
  done;
  Gc_kernel.Storage.sync st;
  Gc_kernel.Storage.close st;
  let gc0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let st = Gc_runtime_unix.Fstore.open_dir ~dir () in
  let replayed = ref 0 in
  Gc_kernel.Storage.iter_from st 0 (fun ~index:_ entry ->
      ignore (Gc_kernel.Storage.Record.decode entry);
      incr replayed);
  let wall_s = Unix.gettimeofday () -. t0 in
  let gc1 = Gc.quick_stat () in
  Gc_kernel.Storage.close st;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Sys.rmdir dir with Sys_error _ -> ());
  let fm = float_of_int count in
  {
    name = Printf.sprintf "log_recovery_%dk" (count / 1000);
    n = 1;
    msgs = count;
    wall_s;
    msgs_per_sec = (if wall_s > 0.0 then fm /. wall_s else infinity);
    minor_words_per_msg = (gc1.Gc.minor_words -. gc0.Gc.minor_words) /. fm;
    promoted_words_per_msg =
      (gc1.Gc.promoted_words -. gc0.Gc.promoted_words) /. fm;
    completed = !replayed = count;
  }

(* ---------- json ---------- *)

let cell_json c =
  Json.Obj
    [
      ("name", Json.Str c.name);
      ("n", Json.Num (float_of_int c.n));
      ("msgs", Json.Num (float_of_int c.msgs));
      ("wall_s", Json.Num c.wall_s);
      ("msgs_per_sec", Json.Num c.msgs_per_sec);
      ("minor_words_per_msg", Json.Num c.minor_words_per_msg);
      ("promoted_words_per_msg", Json.Num c.promoted_words_per_msg);
      ("completed", Json.Bool c.completed);
    ]

let doc_json ~mode ~seed cells =
  Json.Obj
    [
      ("schema", Json.Str "gcs-perf/1");
      ("mode", Json.Str mode);
      ("seed", Json.Num (Int64.to_float seed));
      ("cells", Json.Arr (List.map cell_json cells));
    ]

(* ---------- baseline check ---------- *)

let load_baseline path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.member "cells" (Json.of_string s) with
  | Some (Json.Arr cells) ->
      List.filter_map
        (fun c ->
          match
            ( Option.bind (Json.member "name" c) Json.to_str,
              Option.bind (Json.member "n" c) Json.to_float,
              Option.bind (Json.member "msgs_per_sec" c) Json.to_float )
          with
          | Some name, Some n, Some rate -> Some ((name, int_of_float n), rate)
          | _ -> None)
        cells
  | _ -> failwith (path ^ ": no \"cells\" array")

(* A cell regresses when its throughput fell below half the committed
   baseline's.  Cells absent from the baseline are informational only. *)
let check_against ~path cells =
  let baseline = load_baseline path in
  let regressions =
    List.filter_map
      (fun c ->
        match List.assoc_opt (c.name, c.n) baseline with
        | Some base when c.msgs_per_sec < base /. 2.0 ->
            Some
              (Printf.sprintf "%s n=%d: %.0f msg/s vs baseline %.0f (>2x slower)"
                 c.name c.n c.msgs_per_sec base)
        | _ -> None)
      cells
  in
  List.iter (fun r -> Printf.printf "PERF REGRESSION: %s\n" r) regressions;
  regressions = []

(* The gbcast-gap guard: commuting traffic through the full stack must stay
   within 3x of raw atomic broadcast at the same group size.  Absolute
   rates drift with the host; the *ratio* between two cells of the same run
   is stable, so this check needs no baseline file and runs everywhere. *)
let check_gb_ab_ratio cells =
  let rate name n =
    List.find_opt (fun c -> c.name = name && c.n = n) cells
    |> Option.map (fun c -> c.msgs_per_sec)
  in
  let bad =
    List.filter_map
      (fun n ->
        match (rate "abcast_saturation" n, rate "gbcast_commuting" n) with
        | Some ab, Some gb when gb < ab /. 3.0 ->
            Some
              (Printf.sprintf
                 "gbcast_commuting n=%d: %.0f msg/s vs abcast %.0f (gap > 3x)"
                 n gb ab)
        | _ -> None)
      (List.sort_uniq compare (List.map (fun c -> c.n) cells))
  in
  List.iter (fun r -> Printf.printf "PERF REGRESSION: %s\n" r) bad;
  bad = []

(* ---------- driver ---------- *)

let () =
  let smoke = ref false in
  let seed = ref 42L in
  let out = ref "BENCH_perf.json" in
  let check = ref None in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--seed" :: v :: rest ->
        seed := Int64.of_string v;
        parse rest
    | "-o" :: v :: rest ->
        out := v;
        parse rest
    | "--check" :: v :: rest ->
        check := Some v;
        parse rest
    | a :: _ ->
        Printf.eprintf
          "unknown argument %S; usage: perf [--smoke] [--seed N] [-o FILE] \
           [--check BASELINE]\n"
          a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let echo_count, ab_count, gb_count =
    if !smoke then (800, 300, 200) else (10_000, 2_500, 2_000)
  in
  let seed = !seed in
  let cells = ref [] in
  let run f =
    let c = f () in
    report c;
    cells := c :: !cells
  in
  List.iter
    (fun n ->
      run (fun () -> rchannel_echo ~seed ~n ~count:echo_count);
      run (fun () -> abcast_saturation ~seed ~n ~count:ab_count);
      run (fun () -> gbcast_commuting ~seed ~n ~count:gb_count);
      List.iter
        (fun b -> run (fun () -> gbcast_batch ~seed ~n ~count:gb_count ~batch_max:b))
        [ 1; 16; 64 ])
    [ 3; 5; 8 ];
  (* Recovery time vs log length: how long a kill -9'd server spends
     scanning and replaying its durable log before accepting traffic. *)
  List.iter
    (fun count -> run (fun () -> log_recovery ~count))
    (if !smoke then [ 1_000; 10_000 ] else [ 10_000; 100_000; 1_000_000 ]);
  let cells = List.rev !cells in
  let mode = if !smoke then "smoke" else "full" in
  let oc = open_out !out in
  output_string oc (Json.to_string_pretty (doc_json ~mode ~seed cells));
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nperf results written to %s (%d cells, %s mode)\n" !out
    (List.length cells) mode;
  let incomplete = List.exists (fun c -> not c.completed) cells in
  if incomplete then
    Printf.eprintf "ERROR: some cells did not finish within the horizon\n";
  let ratio_ok = check_gb_ab_ratio cells in
  let ok =
    match !check with Some path -> check_against ~path cells | None -> true
  in
  if (not ok) || (not ratio_ok) || incomplete then exit 1
